package planvet

// Plan corruptor: the verifier's mutation harness. Corrupt clones a
// clean plan and injects one defect of the requested class, returning
// false when the plan has no applicable site (e.g. no alias step to
// cycle). Tests corrupt real compiled MobileNet plans and assert the
// verifier convicts every class — proving the dataflow checks actually
// discriminate, rather than passing everything. Never call this with a
// plan that will execute: the corrupted copy is for Verify only.

// Mutation names one injectable defect class.
type Mutation string

const (
	// MutEarlyDispose moves a dispose point before the root's last
	// reader, the classic off-by-one in reverse-scan liveness. Surfaces
	// as use-after-free at the orphaned reader.
	MutEarlyDispose Mutation = "early-dispose"
	// MutDoubleDispose adds a second dispose point for a root already
	// freed — the recycler would hand one buffer to two tensors.
	MutDoubleDispose Mutation = "double-dispose"
	// MutAliasCycle ties two slots' root pointers into a loop, so no slot
	// owns the container.
	MutAliasCycle Mutation = "alias-cycle"
	// MutUndefinedSlot rewires a step's operand to a slot nothing
	// defines.
	MutUndefinedSlot Mutation = "undefined-slot"
	// MutLeakedRoot deletes a dispose point, so the container never
	// returns to the recycler at its last use.
	MutLeakedRoot Mutation = "leaked-root"
)

// Mutations lists every injectable defect class, in a stable order.
var Mutations = []Mutation{
	MutEarlyDispose, MutDoubleDispose, MutAliasCycle, MutUndefinedSlot, MutLeakedRoot,
}

// Corrupt returns a copy of p with one injected defect of class m, or
// ok=false when p has no applicable site for that class.
func Corrupt(p *Plan, m Mutation) (*Plan, bool) {
	cp := p.Clone()
	switch m {
	case MutEarlyDispose:
		// A dispose point always sits on the root's last reader; moving it
		// one step earlier orphans that read. Needs a dispose point on a
		// step with a predecessor.
		for i := 1; i < len(cp.Steps); i++ {
			if len(cp.Steps[i].Dispose) == 0 {
				continue
			}
			r := cp.Steps[i].Dispose[0]
			cp.Steps[i].Dispose = cp.Steps[i].Dispose[1:]
			cp.Steps[i-1].Dispose = append(cp.Steps[i-1].Dispose, r)
			return cp, true
		}
		return nil, false
	case MutDoubleDispose:
		// Duplicate a dispose entry on a later step (or the same step when
		// it is the last one).
		for i := range cp.Steps {
			if len(cp.Steps[i].Dispose) == 0 {
				continue
			}
			r := cp.Steps[i].Dispose[0]
			j := i + 1
			if j >= len(cp.Steps) {
				j = i
			}
			cp.Steps[j].Dispose = append(cp.Steps[j].Dispose, r)
			return cp, true
		}
		return nil, false
	case MutAliasCycle:
		// Tie a step's input root back to its output: the chain in→out→in
		// never reaches an owning root. Prefer a real alias step (the
		// defect the union-find could actually produce); fully fused plans
		// may have none, so fall back to any step with an operand.
		inject := func(aliasOnly bool) (*Plan, bool) {
			for i := range cp.Steps {
				st := &cp.Steps[i]
				if (aliasOnly && !st.Alias) || len(st.Ins) == 0 {
					continue
				}
				in, out := st.Ins[0], st.Out
				if in == out || in < 0 || out < 0 || in >= len(cp.Roots) || out >= len(cp.Roots) {
					continue
				}
				cp.Roots[out] = in
				cp.Roots[in] = out
				return cp, true
			}
			return nil, false
		}
		if mutated, ok := inject(true); ok {
			return mutated, true
		}
		return inject(false)
	case MutUndefinedSlot:
		// Grow the slot table by one phantom slot and read it.
		for i := range cp.Steps {
			if len(cp.Steps[i].Ins) == 0 {
				continue
			}
			phantom := len(cp.Slots)
			cp.Slots = append(cp.Slots, Slot{Name: "phantom"})
			cp.Roots = append(cp.Roots, phantom)
			cp.Steps[i].Ins[0] = phantom
			return cp, true
		}
		return nil, false
	case MutLeakedRoot:
		for i := range cp.Steps {
			if len(cp.Steps[i].Dispose) == 0 {
				continue
			}
			cp.Steps[i].Dispose = cp.Steps[i].Dispose[1:]
			return cp, true
		}
		return nil, false
	}
	return nil, false
}
