// Package planvet statically verifies compiled execution plans — the
// IR-level front of the tfjs-vet suite. The graph executor's fast path
// (internal/graphmodel, fastpath.go) compiles a model into a dataflow
// program over integer slots: alias steps share physical containers
// through union-find roots, reverse-scan liveness frees each intermediate
// at its last consumer, and the freed buffers park on the engine's
// recycler free lists. A single off-by-one in that compilation — a
// dispose point one step early, a root freed twice, an alias cycle —
// silently corrupts inference outputs once the recycler hands the buffer
// to the next tensor. The runtime NaN-poison scribble catches such bugs
// only when the stale read actually happens; this package proves their
// absence for the whole plan before the first execution.
//
// The executor exports its compiled program as a Plan (slots, alias
// roots, step order, dispose points); Verify runs an abstract
// interpretation over it and proves, for every step:
//
//   - every slot a step reads was defined before use (by a weight seed,
//     a feed, or an earlier step's output);
//   - no step reads an alias-group root after its dispose point
//     (use-after-free, which also catches early-dispose defects);
//   - each produced root is disposed exactly once or escapes as an
//     output (double-dispose and leaked-root defects);
//   - alias chains are acyclic and resolve to the root that actually
//     owns the container, and an alias never outlives its root;
//   - feeds and outputs are never parked in the recycler (no dispose
//     point ever frees a placeholder root or an output root).
//
// Violations come back as structured PlanErrors carrying the node, step,
// slot and lifetime interval, aggregated into one *VerifyError.
// planvet is a leaf package (no repro imports), so any plan-producing
// layer can depend on it.
package planvet

import (
	"fmt"
	"strings"
)

// Slot describes one value slot of the compiled program.
type Slot struct {
	// Name is the producing node's name (weights keep their Const node
	// name; feeds their Placeholder name).
	Name string
	// Weight marks slots seeded from uploaded weights before step 0.
	Weight bool
	// Feed marks placeholder slots: the caller feeds their containers,
	// which the plan must never dispose.
	Feed bool
	// Output marks slots read out as model outputs after the last step.
	Output bool
}

// Step is one compiled dispatch: read Ins, define Out, then free every
// root listed in Dispose back to the recycler.
type Step struct {
	// Node is the graph node this step executes, for error attribution.
	Node string
	// Op is the node's op name.
	Op string
	// Ins are the slots read as operands.
	Ins []int
	// Out is the slot this step defines.
	Out int
	// Alias marks steps whose output shares Ins[0]'s physical container
	// (Identity/Reshape/Flatten): no new allocation, same root.
	Alias bool
	// Dispose lists the alias-group roots whose last reader this step is;
	// their containers return to the recycler after the step runs.
	Dispose []int
}

// Plan is the exported compiled program: the exact slot/root/step/dispose
// structure the fast path executes, lifted into plain data so it can be
// verified, printed and (in tests) corrupted.
type Plan struct {
	// Model labels errors and the lifetime table (telemetry span or name).
	Model string
	// Slots is the program's value-slot table.
	Slots []Slot
	// Roots maps each slot to its alias-group representative: the slot
	// whose step actually produces (or is seeded with) the physical
	// container. Non-alias outputs are their own root; alias outputs point
	// at their input's root. This is also the scratch assignment — slots
	// sharing a root share one backing buffer.
	Roots []int
	// Steps is the program in execution order.
	Steps []Step
}

// Clone deep-copies the plan, so mutation harnesses can corrupt a copy
// without touching the original.
func (p *Plan) Clone() *Plan {
	cp := &Plan{
		Model: p.Model,
		Slots: append([]Slot(nil), p.Slots...),
		Roots: append([]int(nil), p.Roots...),
		Steps: make([]Step, len(p.Steps)),
	}
	for i, st := range p.Steps {
		st.Ins = append([]int(nil), st.Ins...)
		st.Dispose = append([]int(nil), st.Dispose...)
		cp.Steps[i] = st
	}
	return cp
}

// Kind classifies a plan defect.
type Kind int

const (
	// KindMalformed: a slot or root index is out of range, or a non-alias
	// step's root is not itself — the plan is structurally broken.
	KindMalformed Kind = iota
	// KindUndefinedSlot: a step reads a slot nothing defined (no weight
	// seed, no feed, no earlier step output).
	KindUndefinedSlot
	// KindUseAfterFree: a step reads a root after its dispose point. An
	// early-dispose defect (dispose point before the last reader)
	// surfaces as this kind at the orphaned reader.
	KindUseAfterFree
	// KindDoubleDispose: a root is freed at two dispose points.
	KindDoubleDispose
	// KindAliasCycle: the alias chain from a slot never reaches a fixed
	// point (Roots contains a cycle), or an alias step's root disagrees
	// with its input's root.
	KindAliasCycle
	// KindLeakedRoot: a produced root is neither disposed nor escapes as
	// an output — its container would sit on the heap for the rest of the
	// execution and never return to the recycler at its last use.
	KindLeakedRoot
	// KindProtectedDispose: a dispose point frees a root holding a feed,
	// a weight or an output — caller- or model-owned containers that must
	// never be parked in the recycler.
	KindProtectedDispose
)

// String names the defect kind the way the CLI prints it.
func (k Kind) String() string {
	switch k {
	case KindMalformed:
		return "malformed"
	case KindUndefinedSlot:
		return "undefined-slot"
	case KindUseAfterFree:
		return "use-after-free"
	case KindDoubleDispose:
		return "double-dispose"
	case KindAliasCycle:
		return "alias-cycle"
	case KindLeakedRoot:
		return "leaked-root"
	case KindProtectedDispose:
		return "protected-dispose"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PlanError is one provable defect in a compiled plan, with enough
// structure for tooling: the defect kind, where it bites (node, step,
// slot, root) and the root's lifetime interval as compiled. Step indices
// index Plan.Steps; -1 means "before step 0" (weights, feeds) or "never"
// (DisposedAt of outputs and leaked roots).
type PlanError struct {
	Kind  Kind
	Model string
	// Node is the step (or slot) the defect is attributed to.
	Node string
	// Step is the step index where the defect bites (-1 if none applies).
	Step int
	// Slot is the slot involved (-1 if the defect is root-level only).
	Slot int
	// Root is the alias-group root involved (-1 if not resolved).
	Root int
	// Def, LastUse, DisposedAt describe the root's lifetime as compiled.
	Def        int
	LastUse    int
	DisposedAt int
	// Msg is the human-readable diagnostic.
	Msg string
}

// Error renders the defect with its lifetime interval.
func (e *PlanError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", e.Kind, e.Msg)
	if e.Node != "" {
		fmt.Fprintf(&b, " (node %q", e.Node)
		if e.Step >= 0 {
			fmt.Fprintf(&b, ", step %d", e.Step)
		}
		if e.Slot >= 0 {
			fmt.Fprintf(&b, ", slot %d", e.Slot)
		}
		b.WriteString(")")
	}
	if e.Root >= 0 {
		fmt.Fprintf(&b, " [root %d: def %s, last use %s, disposed %s]",
			e.Root, stepLabel(e.Def), stepLabel(e.LastUse), stepLabel(e.DisposedAt))
	}
	return b.String()
}

func stepLabel(i int) string {
	if i < 0 {
		return "-"
	}
	return fmt.Sprintf("s%d", i)
}

// VerifyError aggregates every defect Verify proved, sorted by step.
type VerifyError struct {
	Model string
	Errs  []*PlanError
}

// Error lists up to eight defects; the rest are summarized.
func (e *VerifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "planvet: plan %q has %d defect(s):", e.Model, len(e.Errs))
	max := len(e.Errs)
	if max > 8 {
		max = 8
	}
	for _, pe := range e.Errs[:max] {
		b.WriteString("\n  ")
		b.WriteString(pe.Error())
	}
	if len(e.Errs) > max {
		fmt.Fprintf(&b, "\n  ... and %d more", len(e.Errs)-max)
	}
	return b.String()
}

// verifier carries the abstract-interpretation state of one Verify run.
type verifier struct {
	p *Plan
	// resolved[s] is the slot's alias root after chain-following, or -1
	// when the chain cycles.
	resolved []int
	// protected[r] marks roots holding a feed, weight or output.
	protected []bool
	// outRoot[r] marks roots reaching a model output.
	outRoot []bool
	// def[s] is the step defining slot s (-1: seeded before step 0).
	def []int
	// rootDef[r], rootLastUse[r], rootDisposed[r] are the root lifetime
	// intervals (step indices; -1 = before step 0 / never).
	rootDef, rootLastUse, rootDisposed []int
	errs                               []*PlanError
}

// Verify proves the plan's memory-safety invariants and returns nil, or a
// *VerifyError aggregating every defect found.
func Verify(p *Plan) error {
	v := &verifier{p: p}
	v.resolveRoots()
	v.computeLifetimes()
	v.checkSteps()
	v.checkLeaks()
	if len(v.errs) == 0 {
		return nil
	}
	return &VerifyError{Model: p.Model, Errs: v.errs}
}

func (v *verifier) report(e *PlanError) {
	e.Model = v.p.Model
	v.errs = append(v.errs, e)
}

// lifetime fills a PlanError's interval fields for root r.
func (v *verifier) lifetime(e *PlanError, r int) *PlanError {
	e.Root = r
	if r >= 0 && r < len(v.rootDef) {
		e.Def, e.LastUse, e.DisposedAt = v.rootDef[r], v.rootLastUse[r], v.rootDisposed[r]
	} else {
		e.Def, e.LastUse, e.DisposedAt = -1, -1, -1
	}
	return e
}

// resolveRoots follows every slot's alias chain to a fixed point,
// reporting cycles and parent pointers that disagree with the chain.
func (v *verifier) resolveRoots() {
	n := len(v.p.Slots)
	v.resolved = make([]int, n)
	if len(v.p.Roots) != n {
		v.report(&PlanError{Kind: KindMalformed, Step: -1, Slot: -1, Root: -1, Def: -1, LastUse: -1, DisposedAt: -1,
			Msg: fmt.Sprintf("plan has %d slots but %d root entries", n, len(v.p.Roots))})
		for s := range v.resolved {
			v.resolved[s] = -1
		}
		return
	}
	for s := 0; s < n; s++ {
		v.resolved[s] = -1
		cur := s
		// A chain longer than the slot count must revisit a slot: cycle.
		for hop := 0; hop <= n; hop++ {
			r := v.p.Roots[cur]
			if r < 0 || r >= n {
				v.report(&PlanError{Kind: KindMalformed, Node: v.slotName(cur), Step: -1, Slot: cur, Root: -1, Def: -1, LastUse: -1, DisposedAt: -1,
					Msg: fmt.Sprintf("root pointer %d out of range [0,%d)", r, n)})
				cur = -1
				break
			}
			if r == cur { // fixed point: cur owns its container
				v.resolved[s] = cur
				break
			}
			cur = r
		}
		if cur >= 0 && v.resolved[s] < 0 {
			v.report(&PlanError{Kind: KindAliasCycle, Node: v.slotName(s), Step: -1, Slot: s, Root: v.p.Roots[s], Def: -1, LastUse: -1, DisposedAt: -1,
				Msg: fmt.Sprintf("alias chain from slot %d never reaches an owning root", s)})
		}
	}
}

func (v *verifier) slotName(s int) string {
	if s >= 0 && s < len(v.p.Slots) {
		return v.p.Slots[s].Name
	}
	return ""
}

// computeLifetimes derives per-slot definition points and per-root
// lifetime intervals (def, last use, dispose point) from the step list,
// plus the protected/output root sets.
func (v *verifier) computeLifetimes() {
	n := len(v.p.Slots)
	v.protected = make([]bool, n)
	v.outRoot = make([]bool, n)
	v.def = make([]int, n)
	v.rootDef = make([]int, n)
	v.rootLastUse = make([]int, n)
	v.rootDisposed = make([]int, n)
	for s := 0; s < n; s++ {
		v.def[s] = -2 // -2: never defined; -1: seeded before step 0
		v.rootDef[s] = -2
		v.rootLastUse[s] = -1
		v.rootDisposed[s] = -1
	}
	markRoot := func(s int, f func(r int)) {
		if r := v.resolved[s]; r >= 0 {
			f(r)
		}
	}
	for s := 0; s < n; s++ {
		sl := v.p.Slots[s]
		if sl.Weight || sl.Feed {
			v.def[s] = -1
			markRoot(s, func(r int) {
				v.protected[r] = true
				if v.rootDef[r] == -2 {
					v.rootDef[r] = -1
				}
			})
		}
		if sl.Output {
			markRoot(s, func(r int) {
				v.protected[r] = true
				v.outRoot[r] = true
			})
		}
	}
	for i := range v.p.Steps {
		st := &v.p.Steps[i]
		if st.Out >= 0 && st.Out < n {
			if v.def[st.Out] == -2 {
				v.def[st.Out] = i
			}
			markRoot(st.Out, func(r int) {
				if v.rootDef[r] == -2 {
					v.rootDef[r] = i
				}
			})
		}
		for _, s := range st.Ins {
			if s >= 0 && s < n {
				markRoot(s, func(r int) { v.rootLastUse[r] = i })
			}
		}
		for _, r := range st.Dispose {
			if r >= 0 && r < n && v.rootDisposed[r] < 0 {
				v.rootDisposed[r] = i
			}
		}
	}
	// Outputs are read after the last step.
	for s := 0; s < n; s++ {
		if v.p.Slots[s].Output {
			markRoot(s, func(r int) { v.rootLastUse[r] = len(v.p.Steps) })
		}
	}
}

// checkSteps runs the abstract interpretation: walk the program in step
// order tracking, per root, whether its container is live or freed.
func (v *verifier) checkSteps() {
	n := len(v.p.Slots)
	defined := make([]bool, n)   // slot has a value
	disposedAt := make([]int, n) // root freed at step i (-1: live)
	for s := 0; s < n; s++ {
		disposedAt[s] = -1
		if v.p.Slots[s].Weight || v.p.Slots[s].Feed {
			defined[s] = true
		}
	}
	for i := range v.p.Steps {
		st := &v.p.Steps[i]
		// Reads: every operand slot must be defined, and its container
		// must not have been freed by an earlier dispose point.
		for _, s := range st.Ins {
			if s < 0 || s >= n {
				v.report(&PlanError{Kind: KindMalformed, Node: st.Node, Step: i, Slot: s, Root: -1, Def: -1, LastUse: -1, DisposedAt: -1,
					Msg: fmt.Sprintf("input slot %d out of range [0,%d)", s, n)})
				continue
			}
			if !defined[s] {
				v.report(v.lifetime(&PlanError{Kind: KindUndefinedSlot, Node: st.Node, Step: i, Slot: s,
					Msg: fmt.Sprintf("step reads slot %d (%s) before any definition", s, v.slotName(s))}, v.resolved[s]))
			}
			r := v.resolved[s]
			if r >= 0 && disposedAt[r] >= 0 {
				v.report(v.lifetime(&PlanError{Kind: KindUseAfterFree, Node: st.Node, Step: i, Slot: s,
					Msg: fmt.Sprintf("step reads slot %d (%s) whose container was freed at step %d (%s)",
						s, v.slotName(s), disposedAt[r], v.stepName(disposedAt[r]))}, r))
			}
		}
		// Definition. An alias step must resolve to its input's root (no
		// new container); a non-alias step must own its root.
		if st.Out < 0 || st.Out >= n {
			v.report(&PlanError{Kind: KindMalformed, Node: st.Node, Step: i, Slot: st.Out, Root: -1, Def: -1, LastUse: -1, DisposedAt: -1,
				Msg: fmt.Sprintf("output slot %d out of range [0,%d)", st.Out, n)})
		} else {
			defined[st.Out] = true
			r := v.resolved[st.Out]
			if st.Alias {
				if len(st.Ins) > 0 && st.Ins[0] >= 0 && st.Ins[0] < n {
					if in := v.resolved[st.Ins[0]]; r < 0 || (in >= 0 && r != in) {
						v.report(v.lifetime(&PlanError{Kind: KindAliasCycle, Node: st.Node, Step: i, Slot: st.Out,
							Msg: fmt.Sprintf("alias step's root disagrees with its input's root (slot %d → root %d, input slot %d → root %d)",
								st.Out, r, st.Ins[0], in)}, r))
					}
				}
			} else if r >= 0 && r != st.Out {
				v.report(v.lifetime(&PlanError{Kind: KindMalformed, Node: st.Node, Step: i, Slot: st.Out,
					Msg: fmt.Sprintf("non-alias step's output slot %d resolves to foreign root %d", st.Out, r)}, r))
			}
		}
		// Dispose points: each listed root must be live, unprotected and
		// not read by any later step (the later read is reported above as
		// use-after-free when it happens).
		for _, r := range st.Dispose {
			if r < 0 || r >= n {
				v.report(&PlanError{Kind: KindMalformed, Node: st.Node, Step: i, Slot: -1, Root: r, Def: -1, LastUse: -1, DisposedAt: -1,
					Msg: fmt.Sprintf("dispose entry %d out of range [0,%d)", r, n)})
				continue
			}
			if v.resolved[r] != r {
				v.report(v.lifetime(&PlanError{Kind: KindMalformed, Node: st.Node, Step: i, Slot: r,
					Msg: fmt.Sprintf("dispose entry %d is not an owning root (resolves to %d)", r, v.resolved[r])}, v.resolved[r]))
				continue
			}
			if v.protected[r] {
				what := "weight"
				switch {
				case v.outRoot[r]:
					what = "output"
				case v.p.Slots[r].Feed:
					what = "feed"
				}
				v.report(v.lifetime(&PlanError{Kind: KindProtectedDispose, Node: st.Node, Step: i, Slot: r,
					Msg: fmt.Sprintf("dispose point would park %s root %d (%s) in the recycler", what, r, v.slotName(r))}, r))
				continue
			}
			if disposedAt[r] >= 0 {
				v.report(v.lifetime(&PlanError{Kind: KindDoubleDispose, Node: st.Node, Step: i, Slot: r,
					Msg: fmt.Sprintf("root %d (%s) already freed at step %d (%s)",
						r, v.slotName(r), disposedAt[r], v.stepName(disposedAt[r]))}, r))
				continue
			}
			if v.rootDef[r] == -2 || (v.rootDef[r] >= 0 && v.rootDef[r] > i) {
				v.report(v.lifetime(&PlanError{Kind: KindMalformed, Node: st.Node, Step: i, Slot: r,
					Msg: fmt.Sprintf("dispose point frees root %d (%s) before it is ever produced", r, v.slotName(r))}, r))
				continue
			}
			disposedAt[r] = i
		}
	}
}

func (v *verifier) stepName(i int) string {
	if i >= 0 && i < len(v.p.Steps) {
		return v.p.Steps[i].Node
	}
	return "?"
}

// checkLeaks proves every produced root is freed exactly once or escapes
// as an output. Roots with neither a dispose point nor output status hold
// their container until the end-of-execution sweep — a silent peak-memory
// leak the reverse-scan liveness should have freed at last use.
func (v *verifier) checkLeaks() {
	n := len(v.p.Slots)
	for i := range v.p.Steps {
		st := &v.p.Steps[i]
		if st.Alias || st.Out < 0 || st.Out >= n {
			continue
		}
		r := v.resolved[st.Out]
		if r < 0 || r != st.Out || v.protected[r] {
			continue
		}
		if v.rootDisposed[r] < 0 && !v.outRoot[r] {
			v.report(v.lifetime(&PlanError{Kind: KindLeakedRoot, Node: st.Node, Step: i, Slot: st.Out,
				Msg: fmt.Sprintf("root %d (%s) is neither freed at a dispose point nor escapes as an output",
					r, v.slotName(r))}, r))
		}
	}
}
