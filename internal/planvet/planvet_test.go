package planvet

import (
	"errors"
	"strings"
	"testing"
)

// tinyPlan builds a clean four-step program exercising every construct
// the verifier reasons about: a weight seed, a feed, an alias step, an
// intermediate freed at its last use, and an output root.
//
//	slots: 0 x(feed)  1 w(weight)  2 mm  3 rs(alias of mm)  4 out(output)
//	steps: s0 Placeholder(x)
//	       s1 mm = MatMul(x, w)        dispose: -
//	       s2 rs = Reshape(mm) alias   dispose: -
//	       s3 out = Relu(rs)           dispose: [2]
func tinyPlan() *Plan {
	return &Plan{
		Model: "tiny",
		Slots: []Slot{
			{Name: "x", Feed: true},
			{Name: "w", Weight: true},
			{Name: "mm"},
			{Name: "rs"},
			{Name: "out", Output: true},
		},
		Roots: []int{0, 1, 2, 2, 4},
		Steps: []Step{
			{Node: "x", Op: "Placeholder", Out: 0},
			{Node: "mm", Op: "MatMul", Ins: []int{0, 1}, Out: 2},
			{Node: "rs", Op: "Reshape", Ins: []int{2}, Out: 3, Alias: true},
			{Node: "out", Op: "Relu", Ins: []int{3}, Out: 4, Dispose: []int{2}},
		},
	}
}

func TestVerifyCleanPlan(t *testing.T) {
	if err := Verify(tinyPlan()); err != nil {
		t.Fatalf("clean plan rejected: %v", err)
	}
}

// kinds extracts the defect kinds Verify reported.
func kinds(t *testing.T, err error) map[Kind]bool {
	t.Helper()
	if err == nil {
		t.Fatal("Verify accepted a corrupted plan")
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *VerifyError", err)
	}
	out := map[Kind]bool{}
	for _, pe := range ve.Errs {
		out[pe.Kind] = true
	}
	return out
}

func TestVerifyConvictsEveryMutation(t *testing.T) {
	want := map[Mutation]Kind{
		MutEarlyDispose:  KindUseAfterFree,
		MutDoubleDispose: KindDoubleDispose,
		MutAliasCycle:    KindAliasCycle,
		MutUndefinedSlot: KindUndefinedSlot,
		MutLeakedRoot:    KindLeakedRoot,
	}
	for _, m := range Mutations {
		t.Run(string(m), func(t *testing.T) {
			cp, ok := Corrupt(tinyPlan(), m)
			if !ok {
				t.Fatalf("no site for mutation %s in tiny plan", m)
			}
			got := kinds(t, Verify(cp))
			if !got[want[m]] {
				t.Fatalf("mutation %s: verifier reported %v, want kind %s", m, got, want[m])
			}
		})
	}
}

// Each hand-crafted defect below checks the verifier's attribution, not
// just the verdict: the error must carry the biting step, slot and the
// root's lifetime interval.

func TestUseAfterFreeAttribution(t *testing.T) {
	p := tinyPlan()
	// Free mm's container right after it is produced; the alias read at
	// s2 and the Relu read at s3 both bite.
	p.Steps[1].Dispose = []int{2}
	p.Steps[3].Dispose = nil
	err := Verify(p)
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v", err)
	}
	var uaf *PlanError
	for _, pe := range ve.Errs {
		if pe.Kind == KindUseAfterFree {
			uaf = pe
			break
		}
	}
	if uaf == nil {
		t.Fatalf("no use-after-free among %v", ve.Errs)
	}
	if uaf.Step != 2 || uaf.Root != 2 || uaf.Def != 1 {
		t.Fatalf("attribution step=%d root=%d def=%d, want step=2 root=2 def=1", uaf.Step, uaf.Root, uaf.Def)
	}
}

func TestProtectedDisposeKinds(t *testing.T) {
	cases := []struct {
		name string
		root int
		want string
	}{
		{"feed", 0, "feed"},
		{"weight", 1, "weight"},
		{"output", 4, "output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tinyPlan()
			p.Steps[3].Dispose = append(p.Steps[3].Dispose, tc.root)
			got := kinds(t, Verify(p))
			if !got[KindProtectedDispose] {
				t.Fatalf("disposing %s root not convicted: %v", tc.name, got)
			}
		})
	}
}

func TestMalformedIndices(t *testing.T) {
	p := tinyPlan()
	p.Steps[1].Ins[0] = 99
	got := kinds(t, Verify(p))
	if !got[KindMalformed] {
		t.Fatalf("out-of-range operand not convicted: %v", got)
	}
}

func TestLifetimeTable(t *testing.T) {
	p := tinyPlan()
	lts := Lifetimes(p)
	byRoot := map[int]Lifetime{}
	for _, lt := range lts {
		byRoot[lt.Root] = lt
	}
	mm, ok := byRoot[2]
	if !ok {
		t.Fatalf("no lifetime for root 2 in %v", lts)
	}
	if mm.Class != "inter" || mm.Def != 1 || mm.LastUse != 3 || mm.DisposedAt != 3 {
		t.Fatalf("mm lifetime = %+v, want inter def=1 lastUse=3 disposed=3", mm)
	}
	if len(mm.Aliases) != 1 || mm.Aliases[0] != 3 {
		t.Fatalf("mm aliases = %v, want [3]", mm.Aliases)
	}
	if out := byRoot[4]; out.Class != "output" || out.LastUse != len(p.Steps) {
		t.Fatalf("output lifetime = %+v, want class=output lastUse=end", out)
	}

	table := FormatTable(p)
	for _, frag := range []string{"ROOT", "weight", "feed", "output", "rs(s3)", "1 intermediate container(s), 1 freed"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("table missing %q:\n%s", frag, table)
		}
	}
}

func TestCorruptDoesNotTouchOriginal(t *testing.T) {
	p := tinyPlan()
	for _, m := range Mutations {
		if _, ok := Corrupt(p, m); !ok {
			t.Fatalf("no site for %s", m)
		}
	}
	if err := Verify(p); err != nil {
		t.Fatalf("original plan corrupted by Corrupt: %v", err)
	}
}

func TestErrorRendering(t *testing.T) {
	p, ok := Corrupt(tinyPlan(), MutEarlyDispose)
	if !ok {
		t.Fatal("no early-dispose site")
	}
	msg := Verify(p).Error()
	for _, frag := range []string{"planvet: plan \"tiny\"", "use-after-free", "root 2"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("error rendering missing %q:\n%s", frag, msg)
		}
	}
}
