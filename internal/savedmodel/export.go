package savedmodel

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/tensor"
)

// FromSequential exports a built Layers-API model as a GraphDef — the
// analogue of saving a Keras model as a TensorFlow SavedModel before
// conversion. Along with the inference graph it emits a synthetic training
// subgraph (gradient and optimizer-update nodes marked TrainingOnly), so
// the converter's pruning step operates on a realistic serving/training
// mixture.
func FromSequential(m *layers.Sequential, addTrainingOps bool) (*GraphDef, error) {
	if err := m.Build(); err != nil {
		return nil, err
	}
	g := &GraphDef{Weights: map[string]*Weight{}}
	input := "serving_input"
	// Stamp the Placeholder with its static shape (batch dimension unknown)
	// so the load-time verifier can propagate concrete dimensions through
	// the whole graph instead of starting from an unknown rank.
	inShape, err := m.InputShape()
	if err != nil {
		return nil, err
	}
	g.Nodes = append(g.Nodes, NodeDef{
		Name: input, Op: "Placeholder",
		Attrs: map[string]any{"dtype": "float32", "shape": append([]int{-1}, inShape...)},
	})
	g.Inputs = []string{input}

	prev := input
	for _, l := range m.Layers() {
		var err error
		prev, err = exportLayer(g, l, prev)
		if err != nil {
			return nil, err
		}
	}
	g.Outputs = []string{prev}

	if addTrainingOps {
		// A synthetic optimizer subgraph: one gradient node and one
		// update node per trainable weight, plus a saver. None of these
		// are reachable from the serving output, so conversion must drop
		// them.
		for _, v := range m.TrainableWeights() {
			gradName := v.Name + "/grad"
			g.Nodes = append(g.Nodes, NodeDef{
				Name: gradName, Op: "Gradient", Inputs: []string{g.Outputs[0], constName(v.Name)},
				TrainingOnly: true,
			})
			g.Nodes = append(g.Nodes, NodeDef{
				Name: v.Name + "/apply_sgd", Op: "ApplyGradientDescent",
				Inputs: []string{constName(v.Name), gradName}, TrainingOnly: true,
			})
		}
		g.Nodes = append(g.Nodes, NodeDef{Name: "save/SaveV2", Op: "SaveV2", TrainingOnly: true})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func constName(weightName string) string { return "const/" + weightName }

// addConst registers a weight constant node.
func addConst(g *GraphDef, name string, shape []int, values []float32) string {
	n := constName(name)
	if _, ok := g.Weights[n]; ok {
		return n
	}
	g.Nodes = append(g.Nodes, NodeDef{Name: n, Op: "Const"})
	g.Weights[n] = &Weight{Name: n, Shape: tensor.CopyShape(shape), DType: "float32", Values: values}
	return n
}

// exportLayer lowers one layer into graph nodes, returning the layer's
// output node name.
func exportLayer(g *GraphDef, l layers.Layer, input string) (string, error) {
	cfg := l.Config()
	name := l.Name()
	weights := l.Weights()
	weightVals := func(i int) ([]int, []float32) {
		v := weights[i]
		return v.Shape(), v.Value().DataSync()
	}
	activation := ""
	if a, ok := cfg["activation"].(string); ok {
		activation = a
	}

	out := input
	switch l.ClassName() {
	case "Dense":
		kShape, kVals := weightVals(0)
		kernel := addConst(g, name+"/kernel", kShape, kVals)
		g.Nodes = append(g.Nodes, NodeDef{Name: name + "/MatMul", Op: "MatMul", Inputs: []string{out, kernel}})
		out = name + "/MatMul"
		if len(weights) > 1 {
			bShape, bVals := weightVals(1)
			bias := addConst(g, name+"/bias", bShape, bVals)
			g.Nodes = append(g.Nodes, NodeDef{Name: name + "/BiasAdd", Op: "BiasAdd", Inputs: []string{out, bias}})
			out = name + "/BiasAdd"
		}
	case "Conv2D", "DepthwiseConv2D":
		op := "Conv2D"
		kernelName := name + "/kernel"
		if l.ClassName() == "DepthwiseConv2D" {
			op = "DepthwiseConv2dNative"
			kernelName = name + "/depthwise_kernel"
		}
		kShape, kVals := weightVals(0)
		kernel := addConst(g, kernelName, kShape, kVals)
		attrs := map[string]any{
			"strides": cfg["strides"],
			"padding": cfg["padding"],
		}
		g.Nodes = append(g.Nodes, NodeDef{Name: name + "/" + op, Op: op, Inputs: []string{out, kernel}, Attrs: attrs})
		out = name + "/" + op
		if useBias, _ := cfg["use_bias"].(bool); useBias && len(weights) > 1 {
			bShape, bVals := weightVals(1)
			bias := addConst(g, name+"/bias", bShape, bVals)
			g.Nodes = append(g.Nodes, NodeDef{Name: name + "/BiasAdd", Op: "BiasAdd", Inputs: []string{out, bias}})
			out = name + "/BiasAdd"
		}
	case "BatchNormalization":
		// Weights order: gamma?, beta?, movingMean, movingVar.
		idx := 0
		var gamma, beta string
		if scale, _ := cfg["scale"].(bool); scale {
			s, v := weightVals(idx)
			gamma = addConst(g, name+"/gamma", s, v)
			idx++
		}
		if center, _ := cfg["center"].(bool); center {
			s, v := weightVals(idx)
			beta = addConst(g, name+"/beta", s, v)
			idx++
		}
		mShape, mVals := weightVals(idx)
		mean := addConst(g, name+"/moving_mean", mShape, mVals)
		vShape, vVals := weightVals(idx + 1)
		variance := addConst(g, name+"/moving_variance", vShape, vVals)
		if gamma == "" {
			ones := make([]float32, tensor.ShapeSize(mShape))
			for i := range ones {
				ones[i] = 1
			}
			gamma = addConst(g, name+"/gamma_default", mShape, ones)
		}
		if beta == "" {
			beta = addConst(g, name+"/beta_default", mShape, make([]float32, tensor.ShapeSize(mShape)))
		}
		eps := 1e-3
		if e, ok := cfg["epsilon"].(float64); ok {
			eps = e
		}
		g.Nodes = append(g.Nodes, NodeDef{
			Name: name + "/FusedBatchNorm", Op: "FusedBatchNorm",
			Inputs: []string{out, mean, variance, beta, gamma},
			Attrs:  map[string]any{"epsilon": eps},
		})
		out = name + "/FusedBatchNorm"
	case "MaxPooling2D", "AveragePooling2D":
		op := "MaxPool"
		if l.ClassName() == "AveragePooling2D" {
			op = "AvgPool"
		}
		g.Nodes = append(g.Nodes, NodeDef{
			Name: name + "/" + op, Op: op, Inputs: []string{out},
			Attrs: map[string]any{
				"ksize":   cfg["pool_size"],
				"strides": cfg["strides"],
				"padding": cfg["padding"],
			},
		})
		out = name + "/" + op
	case "GlobalAveragePooling2D":
		g.Nodes = append(g.Nodes, NodeDef{
			Name: name + "/Mean", Op: "Mean", Inputs: []string{out},
			Attrs: map[string]any{"axes": []int{1, 2}},
		})
		out = name + "/Mean"
	case "Flatten":
		g.Nodes = append(g.Nodes, NodeDef{
			Name: name + "/Reshape", Op: "Flatten", Inputs: []string{out},
		})
		out = name + "/Reshape"
	case "Reshape":
		g.Nodes = append(g.Nodes, NodeDef{
			Name: name + "/Reshape", Op: "Reshape", Inputs: []string{out},
			Attrs: map[string]any{"shape": cfg["target_shape"]},
		})
		out = name + "/Reshape"
	case "ZeroPadding2D":
		g.Nodes = append(g.Nodes, NodeDef{
			Name: name + "/Pad", Op: "Pad", Inputs: []string{out},
			Attrs: map[string]any{"padding": cfg["padding"]},
		})
		out = name + "/Pad"
	case "Activation":
		// handled by the shared activation lowering below
	case "Dropout":
		// Inference no-op: lower to Identity so the graph still records
		// the layer boundary.
		g.Nodes = append(g.Nodes, NodeDef{Name: name + "/Identity", Op: "Identity", Inputs: []string{out}})
		out = name + "/Identity"
	default:
		return "", fmt.Errorf("savedmodel: cannot export layer class %q", l.ClassName())
	}

	if activation != "" && activation != "linear" {
		opName := map[string]string{
			"relu": "Relu", "relu6": "Relu6", "sigmoid": "Sigmoid",
			"tanh": "Tanh", "softmax": "Softmax", "elu": "Elu", "softplus": "Softplus",
		}[activation]
		if opName == "" {
			return "", fmt.Errorf("savedmodel: cannot export activation %q", activation)
		}
		g.Nodes = append(g.Nodes, NodeDef{Name: name + "/" + opName, Op: opName, Inputs: []string{out}})
		out = name + "/" + opName
	}
	return out, nil
}
