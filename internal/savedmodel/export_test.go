package savedmodel_test

import (
	"math"
	"testing"

	"repro/internal/converter"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/graphmodel"
	"repro/internal/kernels"
	"repro/internal/layers"
	"repro/internal/ops"
	"repro/internal/savedmodel"
	"repro/internal/tensor"
)

func init() {
	core.Global().RegisterBackend("cpu", func() (kernels.Backend, error) { return cpu.New(), nil })
}

// TestExportEveryLayerClass builds a model touching every exportable layer
// class, converts it end to end (export → artifacts → reload → execute)
// and compares against the Layers model's own predictions.
func TestExportEveryLayerClass(t *testing.T) {
	layers.SetSeed(55)
	useBias := true
	m := layers.NewSequential("kitchen_sink")
	m.Add(layers.NewZeroPadding2D([]int{1}))
	m.SetInputShape([]int{6, 6, 2})
	m.Add(layers.NewConv2D(layers.Conv2DConfig{
		Filters: 4, KernelSize: []int{3, 3}, Padding: "valid", Activation: "relu6", UseBias: &useBias,
	}))
	m.Add(layers.NewBatchNormalization(layers.BatchNormConfig{}))
	m.Add(layers.NewActivation("relu"))
	m.Add(layers.NewDepthwiseConv2D(layers.Conv2DConfig{
		Filters: 1, KernelSize: []int{3, 3}, Padding: "same", Activation: "tanh",
	}))
	m.Add(layers.NewMaxPooling2D(layers.Pool2DConfig{PoolSize: []int{2, 2}}))
	m.Add(layers.NewAveragePooling2D(layers.Pool2DConfig{PoolSize: []int{2, 2}, Strides: []int{1, 1}, Padding: "same"}))
	m.Add(layers.NewDropout(0.3))
	m.Add(layers.NewFlatten())
	m.Add(layers.NewDense(layers.DenseConfig{Units: 12, Activation: "sigmoid"}))
	m.Add(layers.NewReshape([]int{3, 4}))
	m.Add(layers.NewFlatten())
	m.Add(layers.NewDense(layers.DenseConfig{Units: 5, Activation: "softmax"}))
	if err := m.Build(); err != nil {
		t.Fatal(err)
	}

	g, err := savedmodel.FromSequential(m, true)
	if err != nil {
		t.Fatal(err)
	}
	store := converter.NewMemStore()
	if _, err := converter.Convert(g, store, converter.Options{}); err != nil {
		t.Fatal(err)
	}
	gm, err := graphmodel.Load(store)
	if err != nil {
		t.Fatal(err)
	}

	x := ops.RandNormal([]int{3, 6, 6, 2}, 0, 1, nil)
	defer x.Dispose()
	want := m.Predict(x)
	defer want.Dispose()
	got, err := gm.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Dispose()
	wv, gv := want.DataSync(), got.DataSync()
	for i := range wv {
		if math.Abs(float64(wv[i]-gv[i])) > 1e-5 {
			t.Fatalf("kitchen-sink model diverges at %d: %g vs %g", i, gv[i], wv[i])
		}
	}
}

// TestExportUnsupportedLayerErrors: classes without a graph lowering fail
// loudly rather than producing a wrong graph.
func TestExportUnsupportedLayerErrors(t *testing.T) {
	m := layers.NewSequential("rnn_export")
	m.Add(layers.NewSimpleRNN(layers.SimpleRNNConfig{Units: 4, InputShape: []int{5, 2}}))
	if err := m.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := savedmodel.FromSequential(m, false); err == nil {
		t.Fatal("SimpleRNN export should error (no graph lowering)")
	}
}

// TestMultiOutputGraphExecute feeds a graph with two serving outputs.
func TestMultiOutputGraphExecute(t *testing.T) {
	g := &savedmodel.GraphDef{
		Nodes: []savedmodel.NodeDef{
			{Name: "x", Op: "Placeholder"},
			{Name: "double", Op: "Mul", Inputs: []string{"x", "two"}},
			{Name: "two", Op: "Const"},
			{Name: "squash", Op: "Sigmoid", Inputs: []string{"x"}},
		},
		Weights: map[string]*savedmodel.Weight{
			"two": {Name: "two", Shape: nil, DType: "float32", Values: []float32{2}},
		},
		Inputs:  []string{"x"},
		Outputs: []string{"double", "squash"},
	}
	m, err := graphmodel.New(g)
	if err != nil {
		t.Fatal(err)
	}
	x := ops.FromValues([]float32{0, 1}, 2)
	defer x.Dispose()
	outs, err := m.Execute(map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	d := outs["double"].DataSync()
	s := outs["squash"].DataSync()
	if d[0] != 0 || d[1] != 2 {
		t.Fatalf("double = %v", d)
	}
	if math.Abs(float64(s[0])-0.5) > 1e-6 {
		t.Fatalf("squash = %v", s)
	}
	outs["double"].Dispose()
	outs["squash"].Dispose()
}
