// Package savedmodel defines the source model formats the converter
// ingests — the stand-ins for TensorFlow SavedModels and Keras HDF5 models
// (Section 5.1). A GraphDef is a minimal dataflow-graph description: named
// nodes with op types, input edges, attributes and a weight table.
//
// The format deliberately includes training-only constructs (optimizer
// update nodes, savers) so the converter's pruning step has real work to
// do, exactly as pruning "unnecessary operations (e.g. training
// operations)" does in the paper.
package savedmodel

import (
	"encoding/json"
	"fmt"

	"repro/internal/tensor"
)

// NodeDef is one graph node.
type NodeDef struct {
	// Name is the unique node name.
	Name string `json:"name"`
	// Op is the operation type ("Conv2D", "Const", "Placeholder", ...).
	Op string `json:"op"`
	// Inputs are the names of the nodes feeding this one.
	Inputs []string `json:"inputs,omitempty"`
	// Attrs carries op attributes (strides, padding, ...).
	Attrs map[string]any `json:"attrs,omitempty"`
	// TrainingOnly marks nodes that exist only for training (optimizer
	// updates, gradient accumulators, savers); the converter prunes any
	// of these not reachable from the serving outputs.
	TrainingOnly bool `json:"training_only,omitempty"`
}

// Weight is a named constant tensor.
type Weight struct {
	Name   string    `json:"name"`
	Shape  []int     `json:"shape"`
	DType  string    `json:"dtype"`
	Values []float32 `json:"-"` // serialized via the weight shards, not JSON

	// Int8Scales, when non-nil, records that this weight was stored with
	// per-channel symmetric int8 quantization (channel = innermost dim;
	// Values[i] = code·Int8Scales[i % len(Int8Scales)]). The decoded f32
	// values are exact, so execution is unaffected by default — but the
	// quantized-compute optimizer pass uses the scales to rewrite
	// eligible consumers onto the int8 kernels.
	Int8Scales []float32 `json:"-"`
}

// GraphDef is the SavedModel stand-in.
type GraphDef struct {
	// Nodes in topological or arbitrary order; the executor sorts.
	Nodes []NodeDef `json:"nodes"`
	// Weights maps Const node names to their tensors.
	Weights map[string]*Weight `json:"-"`
	// Inputs are the serving input node names (Placeholders).
	Inputs []string `json:"inputs"`
	// Outputs are the serving output node names.
	Outputs []string `json:"outputs"`
}

// Validate checks structural invariants: unique names, known inputs,
// weights for every Const.
func (g *GraphDef) Validate() error {
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Name == "" {
			return fmt.Errorf("savedmodel: node with empty name")
		}
		if seen[n.Name] {
			return fmt.Errorf("savedmodel: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !seen[in] {
				return fmt.Errorf("savedmodel: node %q references unknown input %q", n.Name, in)
			}
		}
		if n.Op == "Const" {
			if _, ok := g.Weights[n.Name]; !ok {
				return fmt.Errorf("savedmodel: Const node %q has no weight", n.Name)
			}
		}
	}
	for _, out := range g.Outputs {
		if !seen[out] {
			return fmt.Errorf("savedmodel: unknown output %q", out)
		}
	}
	for _, in := range g.Inputs {
		if !seen[in] {
			return fmt.Errorf("savedmodel: unknown input %q", in)
		}
	}
	return nil
}

// Node returns the node with the given name.
func (g *GraphDef) Node(name string) (*NodeDef, bool) {
	for i := range g.Nodes {
		if g.Nodes[i].Name == name {
			return &g.Nodes[i], true
		}
	}
	return nil, false
}

// Clone deep-copies the graph structure: nodes (with their input lists and
// attr maps) and weight records (shape slices copied, value slices shared —
// weight data is immutable once loaded, and a rewrite pass that folds values
// installs a fresh slice rather than mutating in place). Rewriting passes
// work on a clone so the caller's GraphDef is never mutated.
func (g *GraphDef) Clone() *GraphDef {
	c := &GraphDef{
		Nodes:   make([]NodeDef, len(g.Nodes)),
		Weights: make(map[string]*Weight, len(g.Weights)),
		Inputs:  append([]string(nil), g.Inputs...),
		Outputs: append([]string(nil), g.Outputs...),
	}
	for i, n := range g.Nodes {
		cn := n
		cn.Inputs = append([]string(nil), n.Inputs...)
		if n.Attrs != nil {
			cn.Attrs = make(map[string]any, len(n.Attrs))
			for k, v := range n.Attrs {
				cn.Attrs[k] = v
			}
		}
		c.Nodes[i] = cn
	}
	for name, w := range g.Weights {
		cw := *w
		cw.Shape = append([]int(nil), w.Shape...)
		cw.Int8Scales = append([]float32(nil), w.Int8Scales...)
		c.Weights[name] = &cw
	}
	return c
}

// Consumers maps each node name to the names of the nodes consuming it. A
// node feeding the same consumer twice is counted once per edge; graph
// outputs are not counted (rewriters must check Outputs separately).
func (g *GraphDef) Consumers() map[string][]string {
	consumers := make(map[string][]string, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in] = append(consumers[in], n.Name)
		}
	}
	return consumers
}

// NumParams counts total weight elements.
func (g *GraphDef) NumParams() int {
	n := 0
	for _, w := range g.Weights {
		n += tensor.ShapeSize(w.Shape)
	}
	return n
}

// MarshalTopology serializes the graph structure (without weight values).
func (g *GraphDef) MarshalTopology() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// UnmarshalTopology parses a serialized graph structure. Weights must be
// attached separately (the converter loads them from the shard files).
func UnmarshalTopology(data []byte) (*GraphDef, error) {
	var g GraphDef
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("savedmodel: parsing topology: %w", err)
	}
	g.Weights = map[string]*Weight{}
	return &g, nil
}
