package savedmodel

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
)

// This file is the load-time static shape/dtype verifier — the second tier
// of the tfjs-vet suite. Where the TensorFlow whitepaper (Abadi et al.,
// 2015) validates a dataflow graph by shape inference before execution,
// VerifyGraph propagates a partial shape (unknown rank, or known rank with
// unknown dims) and a dtype through every node of a GraphDef and rejects
// rank- or dtype-inconsistent models with a node-and-edge diagnostic before
// the first Execute — so a malformed converted artifact fails at load or
// convert time, not at first predict.
//
// The verifier is deliberately optimistic about what it cannot prove:
// unknown dims match anything, and ops the executor does not decode
// statically (which a feed may legally short-circuit at Execute time)
// produce unknown shapes instead of errors. Every issue it does report is a
// provable inconsistency.

// DimUnknown marks a dimension whose size is not statically known.
const DimUnknown = -1

// valueInfo is the inferred static type of one graph edge.
type valueInfo struct {
	shape []int // nil means unknown rank; DimUnknown entries are unknown dims
	dtype string
}

// VerifyIssue is one provable inconsistency found by VerifyGraph.
type VerifyIssue struct {
	// Node and Op identify the inconsistent node.
	Node string
	Op   string
	// Edge names the offending input edge, when the problem is tied to one
	// ("" when the node itself is malformed).
	Edge string
	// Msg describes the inconsistency.
	Msg string
}

// String formats the issue as "node <n> (<op>) [input <edge>]: msg".
func (i VerifyIssue) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %q (%s)", i.Node, i.Op)
	if i.Edge != "" {
		fmt.Fprintf(&b, " input %q", i.Edge)
	}
	b.WriteString(": ")
	b.WriteString(i.Msg)
	return b.String()
}

// VerifyError aggregates every issue found in one verification pass.
type VerifyError struct {
	Issues []VerifyIssue
}

// Error implements the error interface, leading with the first issue.
func (e *VerifyError) Error() string {
	if len(e.Issues) == 0 {
		return "savedmodel: graph verification failed"
	}
	msg := fmt.Sprintf("savedmodel: graph verification failed: %s", e.Issues[0])
	if n := len(e.Issues) - 1; n > 0 {
		msg += fmt.Sprintf(" (and %d more)", n)
	}
	return msg
}

// VerifyGraph statically checks shape and dtype consistency of every node
// in g and returns a *VerifyError listing all provable inconsistencies, or
// nil when the graph is consistent. It does not require Validate to have
// passed: dangling input edges are reported as issues rather than panics.
func VerifyGraph(g *GraphDef) error {
	v := &verifier{g: g, infos: make(map[string]valueInfo, len(g.Nodes))}
	v.run()
	if len(v.issues) == 0 {
		return nil
	}
	return &VerifyError{Issues: v.issues}
}

type verifier struct {
	g      *GraphDef
	infos  map[string]valueInfo
	state  map[string]int // 0 unvisited, 1 visiting, 2 done
	issues []VerifyIssue
}

func (v *verifier) errf(n *NodeDef, edge, format string, args ...any) {
	v.issues = append(v.issues, VerifyIssue{
		Node: n.Name, Op: n.Op, Edge: edge, Msg: fmt.Sprintf(format, args...),
	})
}

// run visits every node in dependency order (not only those reachable from
// the serving outputs, so a malformed but unreachable subgraph is still
// reported at convert time, before pruning would hide it).
func (v *verifier) run() {
	v.state = make(map[string]int, len(v.g.Nodes))
	for i := range v.g.Nodes {
		v.visit(&v.g.Nodes[i])
	}
}

func (v *verifier) visit(n *NodeDef) valueInfo {
	switch v.state[n.Name] {
	case 1:
		// Cycle: topoSort in the executor rejects it with its own error;
		// report once and break the recursion with an unknown value.
		v.errf(n, "", "node participates in a cycle")
		v.state[n.Name] = 2
		unknown := valueInfo{dtype: "float32"}
		v.infos[n.Name] = unknown
		return unknown
	case 2:
		return v.infos[n.Name]
	}
	v.state[n.Name] = 1
	ins := make([]valueInfo, len(n.Inputs))
	for i, name := range n.Inputs {
		dep, ok := v.g.Node(name)
		if !ok {
			v.errf(n, name, "input edge references undeclared node")
			ins[i] = valueInfo{dtype: "float32"}
			continue
		}
		ins[i] = v.visit(dep)
	}
	info := v.infer(n, ins)
	v.state[n.Name] = 2
	v.infos[n.Name] = info
	return info
}

// requireFloat32 flags non-float32 operands of compute ops: every op the
// graph executor decodes runs float32 math.
func (v *verifier) requireFloat32(n *NodeDef, ins []valueInfo) {
	for i, in := range ins {
		if in.dtype != "" && in.dtype != "float32" {
			v.errf(n, inputName(n, i), "dtype mismatch: %s has dtype %s, %s requires float32", inputName(n, i), in.dtype, n.Op)
		}
	}
}

func inputName(n *NodeDef, i int) string {
	if i < len(n.Inputs) {
		return n.Inputs[i]
	}
	return fmt.Sprintf("#%d", i)
}

// arity checks the executor's input-count requirement. It returns false
// (and reports) when the node cannot possibly execute.
func (v *verifier) arity(n *NodeDef, ins []valueInfo, want ...int) bool {
	for _, w := range want {
		if len(ins) == w {
			return true
		}
	}
	wants := make([]string, len(want))
	for i, w := range want {
		wants[i] = fmt.Sprint(w)
	}
	v.errf(n, "", "needs %s inputs, got %d", strings.Join(wants, " or "), len(ins))
	return false
}

// infer computes the output value of one node, reporting any provable
// inconsistency along the way. Ops the executor does not decode statically
// yield an unknown value: a feed may short-circuit them at Execute time, so
// their presence is not a load-time error.
func (v *verifier) infer(n *NodeDef, ins []valueInfo) valueInfo {
	unknown := valueInfo{dtype: "float32"}
	attrs := n.Attrs

	switch n.Op {
	case "Const":
		w, ok := v.g.Weights[n.Name]
		if !ok {
			v.errf(n, "", "Const node has no weight")
			return unknown
		}
		dt := w.DType
		if dt == "" {
			dt = "float32"
		}
		return valueInfo{shape: append([]int(nil), w.Shape...), dtype: dt}

	case "Placeholder":
		dt := vAttrString(attrs, "dtype", "float32")
		if shape, ok := vAttrInts(attrs, "shape"); ok {
			return valueInfo{shape: shape, dtype: dt}
		}
		return valueInfo{dtype: dt}

	case "Identity":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		return ins[0]

	case "Relu", "Relu6", "Sigmoid", "Tanh", "Elu", "Softplus":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		return valueInfo{shape: ins[0].shape, dtype: "float32"}

	case "Softmax":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		if ins[0].shape != nil && len(ins[0].shape) == 0 {
			v.errf(n, inputName(n, 0), "softmax requires rank >= 1, got a scalar")
		}
		return valueInfo{shape: ins[0].shape, dtype: "float32"}

	case "Add", "BiasAdd", "Sub", "Mul":
		if !v.arity(n, ins, 2) {
			return unknown
		}
		v.requireFloat32(n, ins)
		out, ok := broadcastShapes(ins[0].shape, ins[1].shape)
		if !ok {
			v.errf(n, inputName(n, 1), "shape mismatch: cannot broadcast %s against %s",
				shapeString(ins[1].shape), shapeString(ins[0].shape))
			return unknown
		}
		return valueInfo{shape: out, dtype: "float32"}

	case "MatMul", "_FusedMatMul", "_QuantizedFusedMatMul":
		if !v.arity(n, ins, 2, 3) {
			return unknown
		}
		if n.Op == "MatMul" && len(ins) != 2 {
			v.errf(n, "", "needs 2 inputs, got %d", len(ins))
			return unknown
		}
		v.requireFloat32(n, ins)
		ta, tb := vAttrBool(attrs, "transpose_a"), vAttrBool(attrs, "transpose_b")
		if n.Op == "_QuantizedFusedMatMul" && (ta || tb) {
			v.errf(n, "", "quantized matmul does not support transposed operands")
			return unknown
		}
		m, ka := matDims(ins[0].shape, ta)
		kb, nn := matDims(ins[1].shape, tb)
		for i := 0; i < 2; i++ {
			if ins[i].shape != nil && len(ins[i].shape) != 2 {
				v.errf(n, inputName(n, i), "rank mismatch: matmul operand must be rank 2, got rank %d (%s)",
					len(ins[i].shape), shapeString(ins[i].shape))
				return unknown
			}
		}
		if ka != DimUnknown && kb != DimUnknown && ka != kb {
			v.errf(n, inputName(n, 1), "shape mismatch: inner dims %d and %d differ (%s x %s)",
				ka, kb, shapeString(ins[0].shape), shapeString(ins[1].shape))
			return unknown
		}
		if n.Op != "MatMul" {
			if len(ins) == 3 {
				v.checkBias(n, 2, ins[2], nn)
			}
			v.checkActivation(n, attrs)
		}
		if n.Op == "_QuantizedFusedMatMul" {
			v.checkWScales(n, attrs, nn)
		}
		return valueInfo{shape: []int{m, nn}, dtype: "float32"}

	case "Conv2D", "DepthwiseConv2dNative", "FusedConv2D", "FusedDepthwiseConv2dNative", "QuantizedFusedConv2D":
		fused := n.Op != "Conv2D" && n.Op != "DepthwiseConv2dNative"
		depthwise := n.Op == "DepthwiseConv2dNative" || n.Op == "FusedDepthwiseConv2dNative"
		if fused {
			if !v.arity(n, ins, 2, 3) {
				return unknown
			}
		} else if !v.arity(n, ins, 2) {
			return unknown
		}
		v.requireFloat32(n, ins)
		out, outC, ok := v.convShape(n, ins[0].shape, ins[1].shape, attrs, depthwise)
		if !ok {
			return unknown
		}
		if fused {
			if len(ins) == 3 {
				v.checkBias(n, 2, ins[2], outC)
			}
			v.checkActivation(n, attrs)
		}
		if n.Op == "QuantizedFusedConv2D" {
			v.checkWScales(n, attrs, outC)
		}
		return valueInfo{shape: out, dtype: "float32"}

	case "MaxPool", "AvgPool":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		ksize, _ := vAttrInts(attrs, "ksize")
		if ksize == nil {
			ksize = []int{2, 2}
		}
		strides, _ := vAttrInts(attrs, "strides")
		if strides == nil {
			strides = ksize
		}
		pad := vAttrString(attrs, "padding", "valid")
		if len(ksize) != 2 || len(strides) != 2 {
			v.errf(n, "", "ksize and strides must have 2 entries, got %v and %v", ksize, strides)
			return unknown
		}
		if pad != "same" && pad != "valid" {
			v.errf(n, "", "padding must be \"same\" or \"valid\", got %q", pad)
			return unknown
		}
		x := ins[0].shape
		if x == nil {
			return unknown
		}
		if len(x) != 4 {
			v.errf(n, inputName(n, 0), "rank mismatch: pooling input must be rank 4 NHWC, got rank %d (%s)", len(x), shapeString(x))
			return unknown
		}
		oh := spatialOut(x[1], ksize[0], strides[0], pad)
		ow := spatialOut(x[2], ksize[1], strides[1], pad)
		if oh == 0 || ow == 0 {
			v.errf(n, inputName(n, 0), "pool window %v does not fit input %s with padding %q", ksize, shapeString(x), pad)
			return unknown
		}
		return valueInfo{shape: []int{x[0], oh, ow, x[3]}, dtype: "float32"}

	case "Mean":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		axes, _ := vAttrInts(attrs, "axes")
		keep := vAttrBool(attrs, "keep_dims")
		x := ins[0].shape
		if x == nil {
			return unknown
		}
		reduced := make([]bool, len(x))
		for _, a := range axes {
			if a < 0 {
				a += len(x)
			}
			if a < 0 || a >= len(x) {
				v.errf(n, inputName(n, 0), "axis %d out of range for rank %d (%s)", a, len(x), shapeString(x))
				return unknown
			}
			reduced[a] = true
		}
		var out []int
		for i, d := range x {
			switch {
			case !reduced[i]:
				out = append(out, d)
			case keep:
				out = append(out, 1)
			}
		}
		if out == nil {
			out = []int{}
		}
		return valueInfo{shape: out, dtype: "float32"}

	case "FusedBatchNorm":
		if !v.arity(n, ins, 5) {
			return unknown
		}
		v.requireFloat32(n, ins)
		x := ins[0].shape
		var c = DimUnknown
		if x != nil {
			if len(x) == 0 {
				v.errf(n, inputName(n, 0), "batch norm input must have rank >= 1, got a scalar")
				return unknown
			}
			c = x[len(x)-1]
		}
		// mean, variance, beta, gamma are per-channel vectors.
		for i := 1; i < 5; i++ {
			s := ins[i].shape
			if s == nil {
				continue
			}
			if len(s) != 1 {
				v.errf(n, inputName(n, i), "rank mismatch: batch-norm statistic must be rank 1, got rank %d (%s)", len(s), shapeString(s))
				continue
			}
			if s[0] != DimUnknown && c != DimUnknown && s[0] != c && s[0] != 1 {
				v.errf(n, inputName(n, i), "shape mismatch: statistic has %d channels, input has %d", s[0], c)
			}
		}
		return valueInfo{shape: x, dtype: "float32"}

	case "Reshape":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		target, ok := vAttrInts(attrs, "shape")
		x := ins[0].shape
		if !ok || x == nil || len(x) == 0 {
			return unknown
		}
		// The executor prepends the batch dim: out = [x[0], target...].
		out := append([]int{x[0]}, target...)
		if sz, known := shapeSizeKnown(x); known {
			if osz, oknown := shapeSizeKnown(out); oknown && osz != sz {
				v.errf(n, inputName(n, 0), "shape mismatch: cannot reshape %s (%d elements) to %s (%d elements)",
					shapeString(x), sz, shapeString(out), osz)
				return unknown
			}
		}
		return valueInfo{shape: out, dtype: "float32"}

	case "Flatten":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		x := ins[0].shape
		if x == nil {
			return unknown
		}
		if len(x) == 0 {
			v.errf(n, inputName(n, 0), "flatten input must have rank >= 1, got a scalar")
			return unknown
		}
		rest := DimUnknown
		if sz, known := shapeSizeKnown(x[1:]); known {
			rest = sz
		}
		return valueInfo{shape: []int{x[0], rest}, dtype: "float32"}

	case "Pad":
		if !v.arity(n, ins, 1) {
			return unknown
		}
		v.requireFloat32(n, ins)
		p, _ := vAttrInts(attrs, "padding")
		if len(p) != 4 {
			v.errf(n, "", "Pad needs a [top bottom left right] padding attr, got %v", p)
			return unknown
		}
		x := ins[0].shape
		if x == nil {
			return unknown
		}
		if len(x) != 4 {
			v.errf(n, inputName(n, 0), "rank mismatch: Pad input must be rank 4 NHWC, got rank %d (%s)", len(x), shapeString(x))
			return unknown
		}
		out := []int{x[0], addDim(x[1], p[0]+p[1]), addDim(x[2], p[2]+p[3]), x[3]}
		return valueInfo{shape: out, dtype: "float32"}
	}

	// Ops the plan compiler does not decode (it defers them to Execute,
	// where a feed may legally short-circuit them): unknown output.
	return unknown
}

// checkBias validates the optional per-channel bias operand of the fused
// kernels: rank 1, channel count matching the output channels.
func (v *verifier) checkBias(n *NodeDef, i int, bias valueInfo, outC int) {
	s := bias.shape
	if s == nil {
		return
	}
	if len(s) != 1 {
		v.errf(n, inputName(n, i), "rank mismatch: fused bias must be rank 1, got rank %d (%s)", len(s), shapeString(s))
		return
	}
	if s[0] != DimUnknown && outC != DimUnknown && s[0] != outC {
		v.errf(n, inputName(n, i), "shape mismatch: bias has %d channels, output has %d", s[0], outC)
	}
}

// checkWScales validates the quantized kernels' mandatory per-channel
// weight-scale attribute: present, and one positive scale per output
// channel when the channel count is known.
func (v *verifier) checkWScales(n *NodeDef, attrs map[string]any, outC int) {
	scales, ok := vAttrFloats(attrs, "wScales")
	if !ok || len(scales) == 0 {
		v.errf(n, "", "quantized kernel needs a wScales attr (one scale per output channel)")
		return
	}
	if outC != DimUnknown && len(scales) != outC {
		v.errf(n, "", "shape mismatch: wScales has %d entries, output has %d channels", len(scales), outC)
		return
	}
	for i, s := range scales {
		if !(s > 0) {
			v.errf(n, "", "wScales[%d] = %v, want > 0", i, s)
			return
		}
	}
}

// checkActivation validates the fused "activation" attribute against the
// shared FusedActivation table — the same lookup the reference kernels use,
// so verify-time and execute-time agreement is by construction.
func (v *verifier) checkActivation(n *NodeDef, attrs map[string]any) {
	name := vAttrString(attrs, "activation", "")
	if _, ok := kernels.FusedActivation(name); !ok {
		v.errf(n, "", "unknown fused activation %q", name)
	}
}

// convShape infers a convolution output shape, mirroring
// kernels.ComputeConv2DInfo but tolerating unknown dims. When every dim is
// known it delegates to ComputeConv2DInfo itself, so the verifier and the
// runtime kernels agree by construction.
func (v *verifier) convShape(n *NodeDef, x, filter []int, attrs map[string]any, depthwise bool) (out []int, outC int, ok bool) {
	strides, _ := vAttrInts(attrs, "strides")
	if strides == nil {
		strides = []int{1, 1}
	}
	pad := vAttrString(attrs, "padding", "valid")
	if len(strides) != 2 {
		v.errf(n, "", "strides must have 2 entries, got %v", strides)
		return nil, DimUnknown, false
	}
	if pad != "same" && pad != "valid" {
		v.errf(n, "", "padding must be \"same\" or \"valid\", got %q", pad)
		return nil, DimUnknown, false
	}
	if x != nil && len(x) != 4 {
		v.errf(n, inputName(n, 0), "rank mismatch: conv input must be rank 4 NHWC, got rank %d (%s)", len(x), shapeString(x))
		return nil, DimUnknown, false
	}
	if filter != nil && len(filter) != 4 {
		v.errf(n, inputName(n, 1), "rank mismatch: conv filter must be rank 4, got rank %d (%s)", len(filter), shapeString(filter))
		return nil, DimUnknown, false
	}
	if allKnown(x) && allKnown(filter) {
		info, err := kernels.ComputeConv2DInfo(x, filter, strides, []int{1, 1}, pad, depthwise)
		if err != nil {
			v.errf(n, inputName(n, 1), "%v", err)
			return nil, DimUnknown, false
		}
		if info.OutHeight <= 0 || info.OutWidth <= 0 {
			v.errf(n, inputName(n, 0), "filter %dx%d does not fit input %s with padding %q",
				info.FilterHeight, info.FilterWidth, shapeString(x), pad)
			return nil, DimUnknown, false
		}
		return []int{info.BatchSize, info.OutHeight, info.OutWidth, info.OutChannels}, info.OutChannels, true
	}
	// Partial inference.
	batch, inH, inW, inC := DimUnknown, DimUnknown, DimUnknown, DimUnknown
	if x != nil {
		batch, inH, inW, inC = x[0], x[1], x[2], x[3]
	}
	fh, fw, fin, fout := DimUnknown, DimUnknown, DimUnknown, DimUnknown
	if filter != nil {
		fh, fw, fin, fout = filter[0], filter[1], filter[2], filter[3]
	}
	if fin != DimUnknown && inC != DimUnknown && fin != inC {
		v.errf(n, inputName(n, 1), "shape mismatch: filter in-channels %d != input channels %d", fin, inC)
		return nil, DimUnknown, false
	}
	outC = fout
	if depthwise {
		outC = DimUnknown
		if inC != DimUnknown && fout != DimUnknown {
			outC = inC * fout
		}
	}
	oh, ow := DimUnknown, DimUnknown
	if inH != DimUnknown && fh != DimUnknown {
		oh = spatialOut(inH, fh, strides[0], pad)
	}
	if inW != DimUnknown && fw != DimUnknown {
		ow = spatialOut(inW, fw, strides[1], pad)
	}
	if oh == 0 || ow == 0 {
		v.errf(n, inputName(n, 0), "filter does not fit input %s with padding %q", shapeString(x), pad)
		return nil, DimUnknown, false
	}
	return []int{batch, oh, ow, outC}, outC, true
}

// ---------------------------------------------------------------------------
// Partial-shape arithmetic

// spatialOut computes one convolution/pooling output extent. A non-positive
// result means the filter does not fit.
func spatialOut(in, filter, stride int, pad string) int {
	if in == DimUnknown {
		return DimUnknown
	}
	if pad == "same" {
		return (in + stride - 1) / stride
	}
	return (in-filter)/stride + 1
}

func addDim(d, delta int) int {
	if d == DimUnknown {
		return DimUnknown
	}
	return d + delta
}

// matDims returns the (rows, cols) of a rank-2 operand after an optional
// transpose; unknown rank yields unknown dims.
func matDims(s []int, transpose bool) (rows, cols int) {
	if s == nil || len(s) != 2 {
		return DimUnknown, DimUnknown
	}
	if transpose {
		return s[1], s[0]
	}
	return s[0], s[1]
}

// broadcastShapes merges two partial shapes under NumPy broadcasting,
// right-aligned. It reports false only on a provable conflict: both dims
// known, unequal, and neither 1. Unknown ranks broadcast to unknown rank.
func broadcastShapes(a, b []int) ([]int, bool) {
	if a == nil || b == nil {
		return nil, true
	}
	rank := len(a)
	if len(b) > rank {
		rank = len(b)
	}
	out := make([]int, rank)
	for i := 0; i < rank; i++ {
		da, db := 1, 1
		if i >= rank-len(a) {
			da = a[i-(rank-len(a))]
		}
		if i >= rank-len(b) {
			db = b[i-(rank-len(b))]
		}
		switch {
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		case da == DimUnknown || db == DimUnknown:
			out[i] = DimUnknown
			if da != DimUnknown {
				out[i] = da
			} else if db != DimUnknown {
				out[i] = db
			}
		case da == db:
			out[i] = da
		default:
			return nil, false
		}
	}
	return out, true
}

// allKnown reports whether the shape has known rank and all dims known.
func allKnown(s []int) bool {
	if s == nil {
		return false
	}
	for _, d := range s {
		if d == DimUnknown {
			return false
		}
	}
	return true
}

// shapeSizeKnown returns the element count when every dim is known.
func shapeSizeKnown(s []int) (int, bool) {
	if s == nil {
		return 0, false
	}
	n := 1
	for _, d := range s {
		if d == DimUnknown {
			return 0, false
		}
		n *= d
	}
	return n, true
}

// shapeString renders a partial shape with ? for unknown dims.
func shapeString(s []int) string {
	if s == nil {
		return "[?rank]"
	}
	parts := make([]string, len(s))
	for i, d := range s {
		if d == DimUnknown {
			parts[i] = "?"
		} else {
			parts[i] = fmt.Sprint(d)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ---------------------------------------------------------------------------
// Attribute decoding (JSON round-trips turn []int into []any of float64,
// exactly as the graph executor's own attr helpers tolerate)

func vAttrBool(attrs map[string]any, key string) bool {
	v, _ := attrs[key].(bool)
	return v
}

func vAttrString(attrs map[string]any, key, def string) string {
	if v, ok := attrs[key].(string); ok {
		return v
	}
	return def
}

func vAttrInts(attrs map[string]any, key string) ([]int, bool) {
	switch v := attrs[key].(type) {
	case []int:
		return append([]int(nil), v...), true
	case []any:
		out := make([]int, len(v))
		for i, e := range v {
			switch n := e.(type) {
			case int:
				out[i] = n
			case float64:
				out[i] = int(n)
			default:
				return nil, false
			}
		}
		return out, true
	}
	return nil, false
}

func vAttrFloats(attrs map[string]any, key string) ([]float32, bool) {
	switch v := attrs[key].(type) {
	case []float32:
		return v, true
	case []any:
		out := make([]float32, len(v))
		for i, e := range v {
			f, ok := e.(float64)
			if !ok {
				return nil, false
			}
			out[i] = float32(f)
		}
		return out, true
	}
	return nil, false
}
