package savedmodel

import (
	"strings"
	"testing"
)

// ramp fills n ascending values.
func ramp(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i)
	}
	return out
}

// chainGraph builds placeholder(shape) → MatMul(W[wr, wc]) → Softmax.
func chainGraph(inShape []int, wr, wc int) *GraphDef {
	return &GraphDef{
		Nodes: []NodeDef{
			{Name: "x", Op: "Placeholder",
				Attrs: map[string]any{"dtype": "float32", "shape": inShape}},
			{Name: "W", Op: "Const"},
			{Name: "mm", Op: "MatMul", Inputs: []string{"x", "W"}},
			{Name: "probs", Op: "Softmax", Inputs: []string{"mm"}},
		},
		Weights: map[string]*Weight{
			"W": {Name: "W", Shape: []int{wr, wc}, DType: "float32", Values: ramp(wr * wc)},
		},
		Inputs:  []string{"x"},
		Outputs: []string{"probs"},
	}
}

func TestVerifyGraphAccepts(t *testing.T) {
	cases := map[string]*GraphDef{
		"static-shapes":   chainGraph([]int{-1, 8}, 8, 4),
		"unknown-batch":   chainGraph([]int{DimUnknown, 8}, 8, 4),
		"shapeless-input": chainGraph(nil, 8, 4),
	}
	// A placeholder with no shape attr at all must also pass: unknown rank
	// matches anything.
	noShape := chainGraph(nil, 8, 4)
	noShape.Nodes[0].Attrs = nil
	cases["no-shape-attr"] = noShape

	for name, g := range cases {
		if err := VerifyGraph(g); err != nil {
			t.Errorf("%s: unexpected rejection: %v", name, err)
		}
	}
}

// wantIssue runs VerifyGraph and asserts one issue mentions node and text.
func wantIssue(t *testing.T, g *GraphDef, node, text string) {
	t.Helper()
	err := VerifyGraph(g)
	if err == nil {
		t.Fatalf("want rejection mentioning node %q / %q, got nil", node, text)
	}
	ve, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("want *VerifyError, got %T: %v", err, err)
	}
	for _, issue := range ve.Issues {
		if issue.Node == node && strings.Contains(issue.String(), text) {
			return
		}
	}
	t.Fatalf("no issue on node %q containing %q; got: %v", node, text, ve.Issues)
}

func TestVerifyGraphRankMismatch(t *testing.T) {
	// Rank-3 input into a rank-2-only MatMul.
	wantIssue(t, chainGraph([]int{-1, 4, 8}, 8, 4), "mm", "rank mismatch")
}

func TestVerifyGraphInnerDimMismatch(t *testing.T) {
	// Inner dims 8 vs 16.
	wantIssue(t, chainGraph([]int{-1, 8}, 16, 4), "mm", "inner dims")
}

func TestVerifyGraphDTypeMismatch(t *testing.T) {
	g := chainGraph([]int{-1, 8}, 8, 4)
	g.Weights["W"].DType = "int32"
	wantIssue(t, g, "mm", "dtype mismatch")
}

func TestVerifyGraphDanglingInput(t *testing.T) {
	g := chainGraph([]int{-1, 8}, 8, 4)
	g.Nodes[2].Inputs[1] = "missing"
	wantIssue(t, g, "mm", "undeclared node")
}

func TestVerifyGraphCycle(t *testing.T) {
	g := &GraphDef{
		Nodes: []NodeDef{
			{Name: "a", Op: "Relu", Inputs: []string{"b"}},
			{Name: "b", Op: "Relu", Inputs: []string{"a"}},
		},
		Weights: map[string]*Weight{},
		Inputs:  []string{"a"},
		Outputs: []string{"b"},
	}
	err := VerifyGraph(g)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle issue, got %v", err)
	}
}

func TestVerifyGraphBroadcastConflict(t *testing.T) {
	g := &GraphDef{
		Nodes: []NodeDef{
			{Name: "x", Op: "Placeholder",
				Attrs: map[string]any{"shape": []int{-1, 4}}},
			{Name: "b", Op: "Const"},
			{Name: "sum", Op: "Add", Inputs: []string{"x", "b"}},
		},
		Weights: map[string]*Weight{
			"b": {Name: "b", Shape: []int{3}, DType: "float32", Values: ramp(3)},
		},
		Inputs:  []string{"x"},
		Outputs: []string{"sum"},
	}
	wantIssue(t, g, "sum", "cannot broadcast")
}

func TestVerifyGraphConvShapes(t *testing.T) {
	conv := func(filterShape []int) *GraphDef {
		return &GraphDef{
			Nodes: []NodeDef{
				{Name: "x", Op: "Placeholder",
					Attrs: map[string]any{"shape": []int{-1, 8, 8, 3}}},
				{Name: "W", Op: "Const"},
				{Name: "conv", Op: "Conv2D", Inputs: []string{"x", "W"},
					Attrs: map[string]any{"strides": []int{1, 1}, "padding": "same"}},
			},
			Weights: map[string]*Weight{
				"W": {Name: "W", Shape: filterShape, DType: "float32",
					Values: ramp(shapeSizeFor(filterShape))},
			},
			Inputs:  []string{"x"},
			Outputs: []string{"conv"},
		}
	}
	if err := VerifyGraph(conv([]int{3, 3, 3, 8})); err != nil {
		t.Fatalf("consistent conv rejected: %v", err)
	}
	// Filter expects 4 input channels, image has 3.
	wantIssue(t, conv([]int{3, 3, 4, 8}), "conv", "in-channels")
}

func shapeSizeFor(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// TestVerifyGraphUnknownOpIsSilent pins the optimistic contract: ops the
// executor does not decode statically (a feed may short-circuit them) are
// unknown-shape producers, not errors — graphmodel.New must keep accepting
// graphs with exotic ops, failing only at Execute.
func TestVerifyGraphUnknownOpIsSilent(t *testing.T) {
	g := &GraphDef{
		Nodes: []NodeDef{
			{Name: "x", Op: "Placeholder"},
			{Name: "fft", Op: "FFT", Inputs: []string{"x"}},
			{Name: "out", Op: "Relu", Inputs: []string{"fft"}},
		},
		Weights: map[string]*Weight{},
		Inputs:  []string{"x"},
		Outputs: []string{"out"},
	}
	if err := VerifyGraph(g); err != nil {
		t.Fatalf("unknown op must verify silently, got %v", err)
	}
}

// TestVerifyGraphMultipleIssues: every provable inconsistency is reported,
// not only the first.
func TestVerifyGraphMultipleIssues(t *testing.T) {
	g := chainGraph([]int{-1, 8}, 16, 4) // inner-dim mismatch
	g.Nodes[3].Inputs[0] = "missing"     // plus a dangling edge
	err := VerifyGraph(g)
	ve, ok := err.(*VerifyError)
	if !ok || len(ve.Issues) < 2 {
		t.Fatalf("want >= 2 issues, got %v", err)
	}
	if !strings.Contains(err.Error(), "more)") {
		t.Fatalf("aggregate error should count extra issues: %v", err)
	}
}
