package serving

// This file implements per-tenant admission control: weighted-fair
// sharing of a model's serving capacity, with load shedding when a
// tenant exceeds its share. It is the multi-tenancy layer over the
// bounded-queue scheduler — the queue bounds total work, admission
// bounds each tenant's slice of it, so one chatty tenant degrades
// itself instead of everyone.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// tenantKey carries the requesting tenant through a context (the HTTP
// layer sets it from the X-Tenant-ID header).
type tenantKey struct{}

// WithTenant returns ctx annotated with the requesting tenant's ID.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantOf returns the tenant ID from ctx, or "" for anonymous requests.
func TenantOf(ctx context.Context) string {
	if v, ok := ctx.Value(tenantKey{}).(string); ok {
		return v
	}
	return ""
}

// anonymousTenant buckets requests that carry no tenant ID, so anonymous
// traffic competes under one (configurable) weight instead of bypassing
// fairness.
const anonymousTenant = "_anonymous"

// ShedError is returned when admission control or the bounded queue
// refuses a request. It maps to HTTP 429 with a Retry-After header
// estimated from the model's recent execution latency.
type ShedError struct {
	// Reason is "tenant_quota" (the tenant exceeded its weighted-fair
	// share) or "queue_full" (total capacity exhausted).
	Reason string
	// Tenant is the shed tenant ("" when anonymous or not tenant-scoped).
	Tenant string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *ShedError) Error() string {
	if e.Tenant != "" && e.Tenant != anonymousTenant {
		return fmt.Sprintf("serving: request shed (%s, tenant %q); retry after %s", e.Reason, e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("serving: request shed (%s); retry after %s", e.Reason, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrQueueFull) keep working for queue-full
// sheds, preserving the pre-admission error contract (and the
// "queue_full" metrics label).
func (e *ShedError) Unwrap() error {
	if e.Reason == "queue_full" {
		return ErrQueueFull
	}
	return nil
}

// admission is a work-conserving weighted-fair admission controller over
// a model's in-flight requests. Each tenant t with weight w_t may hold up
// to share_t = ceil(capacity · w_t / Σ weights of active tenants) slots,
// where "active" means holding at least one slot right now. Shares are
// recomputed per admission from live state, so an idle tenant's share
// flows to the busy ones (work conservation) and returns the moment it
// wakes up.
type admission struct {
	mu sync.Mutex
	// weights maps tenant → weight. Tenants not listed get defaultWeight.
	weights       map[string]int
	defaultWeight int
	capacity      int
	inflight      map[string]int
	shed          map[string]int64 // tenant → sheds, for metrics
}

// newAdmission builds the controller. capacity is the model's total
// concurrent-request budget (the scheduler queue size: requests past it
// would be refused anyway).
func newAdmission(tenants map[string]int, capacity int) *admission {
	w := make(map[string]int, len(tenants))
	for t, weight := range tenants {
		if weight > 0 {
			w[t] = weight
		}
	}
	return &admission{
		weights:       w,
		defaultWeight: 1,
		capacity:      capacity,
		inflight:      map[string]int{},
		shed:          map[string]int64{},
	}
}

func (a *admission) weightOf(tenant string) int {
	if w, ok := a.weights[tenant]; ok {
		return w
	}
	return a.defaultWeight
}

// tryAdmit claims a slot for tenant, returning its release function, or
// reports the tenant over-share. The returned release must be called
// exactly once when the request leaves the system.
func (a *admission) tryAdmit(tenant string) (release func(), ok bool) {
	if tenant == "" {
		tenant = anonymousTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Σ weights over active tenants, counting the candidate as active so
	// a newly arriving tenant immediately claims its own share.
	totalW := a.weightOf(tenant)
	for t, n := range a.inflight {
		if n > 0 && t != tenant {
			totalW += a.weightOf(t)
		}
	}
	share := (a.capacity*a.weightOf(tenant) + totalW - 1) / totalW
	if share < 1 {
		share = 1
	}
	if a.inflight[tenant] >= share {
		a.shed[tenant]++
		return nil, false
	}
	a.inflight[tenant]++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			if a.inflight[tenant]--; a.inflight[tenant] <= 0 {
				delete(a.inflight, tenant)
			}
			a.mu.Unlock()
		})
	}, true
}

// TenantSnapshot is one tenant's admission state for /metrics.
type TenantSnapshot struct {
	Tenant   string `json:"tenant"`
	Weight   int    `json:"weight"`
	Inflight int    `json:"inflight"`
	Shed     int64  `json:"shed"`
}

// snapshots samples per-tenant admission state: every configured tenant,
// plus any unconfigured tenant that has current in-flight work or sheds.
func (a *admission) snapshots() []TenantSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := map[string]bool{}
	var out []TenantSnapshot
	add := func(t string) {
		if seen[t] {
			return
		}
		seen[t] = true
		out = append(out, TenantSnapshot{
			Tenant: t, Weight: a.weightOf(t),
			Inflight: a.inflight[t], Shed: a.shed[t],
		})
	}
	for t := range a.weights {
		add(t)
	}
	for t := range a.inflight {
		add(t)
	}
	for t := range a.shed {
		add(t)
	}
	return out
}

// retryAfterHint estimates a client backoff from the model's recent
// execute-stage latency and queue depth: roughly "one queue drain" —
// p50 execution time times the batches ahead — clamped to a sane band.
// estimateMS is the runner's measured per-execution latency (the
// continuous profiler's EWMA), consulted before falling back to a fixed
// guess when the stage histogram has no samples yet — a cold-but-profiled
// model sheds with a hint matched to its actual speed.
func retryAfterHint(m *Metrics, queueDepth, maxBatch int, estimateMS float64) time.Duration {
	p50, _, _ := m.StagePercentiles("execute")
	if p50 <= 0 {
		p50 = estimateMS
	}
	if p50 <= 0 {
		p50 = 50 // nothing observed or measured yet: assume a 50ms model
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	batchesAhead := queueDepth/maxBatch + 1
	d := time.Duration(p50*float64(batchesAhead)) * time.Millisecond
	const floor, ceil = 100 * time.Millisecond, 5 * time.Second
	if d < floor {
		return floor
	}
	if d > ceil {
		return ceil
	}
	return d
}
