package serving

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// request is one queued single-example prediction.
type request struct {
	ctx  context.Context
	inst Instance
	resp chan response // buffered(1): workers never block on delivery
}

// response carries the per-example result back to the submitter.
type response struct {
	inst Instance
	err  error
}

// scheduler owns one model's bounded request queue, worker pool and
// dynamic micro-batcher. Submissions beyond QueueSize fail fast with
// ErrQueueFull (backpressure, 429); each worker coalesces up to
// MaxBatchSize queued requests, waiting at most BatchTimeout after the
// first arrival, and executes them as one batch.
type scheduler struct {
	cfg     Config
	run     runner
	metrics *Metrics

	queue chan *request
	stop  chan struct{}
	wg    sync.WaitGroup

	closeOnce sync.Once
}

// newScheduler starts the worker pool.
func newScheduler(cfg Config, run runner, metrics *Metrics) *scheduler {
	s := &scheduler{
		cfg:     cfg,
		run:     run,
		metrics: metrics,
		queue:   make(chan *request, cfg.QueueSize),
		stop:    make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers and waits for in-flight batches to finish.
func (s *scheduler) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// QueueDepth samples the number of pending requests.
func (s *scheduler) QueueDepth() int { return len(s.queue) }

// Submit enqueues one example and blocks until its result, the context's
// deadline, or shutdown. The request's deadline is capped server-side at
// RequestTimeout.
func (s *scheduler) Submit(ctx context.Context, inst Instance) (Instance, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	req := &request{ctx: ctx, inst: inst, resp: make(chan response, 1)}
	select {
	case s.queue <- req:
	default:
		return Instance{}, ErrQueueFull
	}
	select {
	case r := <-req.resp:
		return r.inst, r.err
	case <-ctx.Done():
		return Instance{}, ctx.Err()
	case <-s.stop:
		return Instance{}, ErrShuttingDown
	}
}

// worker drains the queue: block for the first request, coalesce a batch,
// execute, deliver.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case first := <-s.queue:
			s.execute(s.gather(first))
		}
	}
}

// gather coalesces queued requests behind first into a batch: up to
// MaxBatchSize, waiting at most BatchTimeout past the first arrival.
func (s *scheduler) gather(first *request) []*request {
	batch := []*request{first}
	if s.cfg.MaxBatchSize <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchTimeout)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatchSize {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// execute drops expired requests, groups the rest by instance shape
// (only same-shaped examples can share a Concat), and runs each group as
// one batched execution.
func (s *scheduler) execute(batch []*request) {
	var live []*request
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.resp <- response{err: err}
			continue
		}
		live = append(live, r)
	}
	groups := map[string][]*request{}
	var order []string
	for _, r := range live {
		key := r.inst.shapeKey()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], r)
	}
	for _, key := range order {
		group := groups[key]
		insts := make([]Instance, len(group))
		for i, r := range group {
			insts[i] = r.inst
		}
		s.metrics.ObserveBatch(len(group))
		outs, err := s.run.run(insts)
		if err == nil && len(outs) != len(group) {
			err = fmt.Errorf("serving: runner returned %d results for a batch of %d", len(outs), len(group))
		}
		for i, r := range group {
			if err != nil {
				r.resp <- response{err: err}
				continue
			}
			r.resp <- response{inst: outs[i]}
		}
	}
}
