package serving

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// request is one queued single-example prediction.
type request struct {
	ctx  context.Context
	inst Instance
	resp chan response // buffered(1): workers never block on delivery

	// Tracing state. trace is the request/trace ID from the context (or
	// generated); flow is the numeric Chrome flow-event ID linking this
	// request's span to the batched execution it joins (0 when the
	// telemetry hub has no observers). enqueued/dequeued bound the
	// queue-wait stage and are recorded unconditionally — they also feed
	// the stage-latency histograms in /metrics.
	trace    string
	flow     uint64
	enqueued time.Time
	dequeued time.Time
}

// response carries the per-example result back to the submitter.
type response struct {
	inst Instance
	err  error
}

// scheduler owns one model's bounded request queue, worker pool and
// dynamic micro-batcher. Submissions beyond QueueSize fail fast with
// ErrQueueFull (backpressure, 429); each worker coalesces up to
// MaxBatchSize queued requests, waiting at most BatchTimeout after the
// first arrival, and executes them as one batch.
//
// Every request is traced through four stages — queue_wait, gather,
// execute, split — with per-stage latency histograms; when the telemetry
// hub has observers, each stage also emits an Event tagged with the
// request's trace ID, and Chrome flow events link the N coalesced
// request spans into the one batch slice that served them.
type scheduler struct {
	cfg     Config
	model   string
	run     runner
	est     costEstimator // run's measured-latency view; nil when unsupported
	metrics *Metrics
	hub     *telemetry.Hub

	queue chan *request
	stop  chan struct{}
	wg    sync.WaitGroup

	closeOnce sync.Once
}

// newScheduler starts the worker pool. The model name labels batch spans
// and stage events. Runners that can report a measured per-execution
// latency (graph runners, replica pools) are detected here and feed the
// Retry-After hint before the execute-stage histogram has samples.
func newScheduler(cfg Config, model string, run runner, metrics *Metrics) *scheduler {
	s := &scheduler{
		cfg:     cfg,
		model:   model,
		run:     run,
		metrics: metrics,
		hub:     core.Global().Telemetry(),
		queue:   make(chan *request, cfg.QueueSize),
		stop:    make(chan struct{}),
	}
	if est, ok := run.(costEstimator); ok {
		s.est = est
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// retryAfter computes the backoff hint for a shed request, folding in the
// runner's measured execution latency when available.
func (s *scheduler) retryAfter() time.Duration {
	estMS := 0.0
	if s.est != nil {
		estMS = s.est.estimateExecMS()
	}
	return retryAfterHint(s.metrics, len(s.queue), s.cfg.MaxBatchSize, estMS)
}

// Close stops the workers and waits for in-flight batches to finish.
func (s *scheduler) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// QueueDepth samples the number of pending requests.
func (s *scheduler) QueueDepth() int { return len(s.queue) }

// Submit enqueues one example and blocks until its result, the context's
// deadline, or shutdown. The request's deadline is capped server-side at
// RequestTimeout.
func (s *scheduler) Submit(ctx context.Context, inst Instance) (Instance, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	req := &request{ctx: ctx, inst: inst, resp: make(chan response, 1), enqueued: time.Now()}
	if s.hub.Active() {
		req.trace = RequestID(ctx)
		if req.trace == "" {
			req.trace = generateRequestID()
		}
		req.flow = nextID()
	}
	select {
	case s.queue <- req:
	default:
		s.metrics.ObserveRejected()
		// ShedError unwraps to ErrQueueFull, so errors.Is callers see the
		// same contract as before; the wrapper adds the Retry-After hint.
		return Instance{}, &ShedError{
			Reason:     "queue_full",
			RetryAfter: s.retryAfter(),
		}
	}
	select {
	case r := <-req.resp:
		return r.inst, r.err
	case <-ctx.Done():
		return Instance{}, ctx.Err()
	case <-s.stop:
		return Instance{}, ErrShuttingDown
	}
}

// worker drains the queue: block for the first request, coalesce a batch,
// execute, deliver.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case first := <-s.queue:
			s.execute(s.gather(first))
		}
	}
}

// admit stamps a pulled request's dequeue time unless its context already
// expired — an abandoned submitter is answered immediately (it has
// already gone away) instead of consuming a batch slot, so a slow client
// cannot shrink the effective batch for everyone else.
func (s *scheduler) admit(batch []*request, r *request) []*request {
	if err := r.ctx.Err(); err != nil {
		r.resp <- response{err: err}
		return batch
	}
	r.dequeued = time.Now()
	return append(batch, r)
}

// gather coalesces queued requests behind first into a batch: up to
// MaxBatchSize, waiting at most BatchTimeout past the first arrival.
// Requests whose context expired while queued are dropped at admission,
// so the returned batch may be smaller than what was pulled — or empty.
func (s *scheduler) gather(first *request) []*request {
	batch := s.admit(nil, first)
	if s.cfg.MaxBatchSize <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchTimeout)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatchSize {
		select {
		case r := <-s.queue:
			batch = s.admit(batch, r)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// execute groups the batch by instance shape (only same-shaped examples
// can share a Concat) and runs each group as one batched execution.
func (s *scheduler) execute(batch []*request) {
	groups := map[string][]*request{}
	var order []string
	for _, r := range batch {
		key := r.inst.shapeKey()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], r)
	}
	for _, key := range order {
		s.runGroup(groups[key])
	}
}

// runGroup executes one same-shaped group as a single batched call and
// delivers per-request results, recording stage latencies and — when the
// hub is observed — the trace events that render the fan-in.
func (s *scheduler) runGroup(group []*request) {
	execStart := time.Now()
	observed := s.hub.Active()

	// Stage histograms are always recorded (two time.Now() calls per
	// request beyond what delivery needs); events only when observed.
	for _, r := range group {
		queueMS := durMS(r.enqueued, r.dequeued)
		gatherMS := durMS(r.dequeued, execStart)
		s.metrics.ObserveStage("queue_wait", queueMS)
		s.metrics.ObserveStage("gather", gatherMS)
		if observed {
			s.hub.Emit(telemetry.Event{
				Kind: telemetry.KindStage, Name: "queue_wait", Span: s.model,
				Trace: r.trace, FlowID: r.flow, Start: r.enqueued, DurMS: queueMS,
			})
			s.hub.Emit(telemetry.Event{
				Kind: telemetry.KindStage, Name: "gather", Span: s.model,
				Trace: r.trace, FlowID: r.flow, Start: r.dequeued, DurMS: gatherMS,
			})
		}
	}

	insts := make([]Instance, len(group))
	for i, r := range group {
		insts[i] = r.inst
	}
	s.metrics.ObserveBatch(len(group))
	outs, err := s.run.run(insts)
	if err == nil && len(outs) != len(group) {
		err = fmt.Errorf("serving: runner returned %d results for a batch of %d", len(outs), len(group))
	}
	execEnd := time.Now()
	execMS := durMS(execStart, execEnd)
	s.metrics.ObserveStage("execute", execMS)

	if observed {
		// One batch slice per group — the fan-in target — then one
		// execute stage per member request carrying the flow ID that the
		// trace renderer turns into an arrow from the request's span into
		// this slice.
		batchID := nextID()
		s.hub.Emit(telemetry.Event{
			Kind: telemetry.KindBatch, Name: "batch", Span: s.model,
			FlowID: batchID, Count: len(group), Start: execStart, DurMS: execMS,
		})
		for _, r := range group {
			s.hub.Emit(telemetry.Event{
				Kind: telemetry.KindStage, Name: "execute", Span: s.model,
				Trace: r.trace, FlowID: r.flow, Start: execStart, DurMS: execMS,
			})
		}
	}

	for i, r := range group {
		if err != nil {
			r.resp <- response{err: err}
		} else {
			r.resp <- response{inst: outs[i]}
		}
		end := time.Now()
		splitMS := durMS(execEnd, end)
		s.metrics.ObserveStage("split", splitMS)
		if observed {
			s.hub.Emit(telemetry.Event{
				Kind: telemetry.KindStage, Name: "split", Span: s.model,
				Trace: r.trace, FlowID: r.flow, Start: execEnd, DurMS: splitMS,
			})
			s.hub.Emit(telemetry.Event{
				Kind: telemetry.KindRequest, Name: "request", Span: s.model,
				Trace: r.trace, FlowID: r.flow, Start: r.enqueued,
				DurMS: durMS(r.enqueued, end),
			})
		}
	}
}

// durMS is the duration between two instants in float milliseconds.
func durMS(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}
