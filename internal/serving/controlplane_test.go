package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// addRunner returns each instance with delta added to every value.
func addRunner(delta float32) runnerFunc {
	return func(batch []Instance) ([]Instance, error) {
		out := make([]Instance, len(batch))
		for i, in := range batch {
			vals := make([]float32, len(in.Values))
			for j, v := range in.Values {
				vals[j] = v + delta
			}
			out[i] = Instance{Values: vals, Shape: in.Shape}
		}
		return out, nil
	}
}

// scaleRunner returns each instance with every value scaled.
func scaleRunner(factor float32) runnerFunc {
	return func(batch []Instance) ([]Instance, error) {
		out := make([]Instance, len(batch))
		for i, in := range batch {
			vals := make([]float32, len(in.Values))
			for j, v := range in.Values {
				vals[j] = v * factor
			}
			out[i] = Instance{Values: vals, Shape: in.Shape}
		}
		return out, nil
	}
}

// postJSON posts a predict body and returns status, response body and
// headers.
func postJSON(t *testing.T, url, body string, headers map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, data, resp.Header
}

// TestReplicaPoolOverlap proves the replica router delivers real
// concurrency: two 100ms predicts against a 2-replica pool must overlap
// in time (serialized execution would take ≥200ms), and the work must
// land on both replicas.
func TestReplicaPoolOverlap(t *testing.T) {
	const hold = 100 * time.Millisecond
	slow := runnerFunc(func(batch []Instance) ([]Instance, error) {
		time.Sleep(hold)
		return batch, nil
	})
	p := &pool{replicas: []*replica{{id: 0, run: slow}, {id: 1, run: slow}}}
	m := stubModel("par", Config{MaxBatchSize: 1, QueueSize: 8, Workers: 2}, p)
	defer m.unload()

	inst := Instance{Values: []float32{1}, Shape: []int{1}}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Predict(context.Background(), inst); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed >= 2*hold {
		t.Fatalf("two predicts on a 2-replica pool serialized: %v", elapsed)
	}
	snaps := p.snapshots()
	total := int64(0)
	for _, s := range snaps {
		total += s.Batches
	}
	if total != 2 {
		t.Fatalf("pool executed %d batches, want 2 (%+v)", total, snaps)
	}
	for _, s := range snaps {
		if s.Batches != 1 {
			t.Fatalf("least-loaded routing did not spread the batches: %+v", snaps)
		}
	}
}

// TestCanarySplit verifies weighted canary routing: with a 90/10 split,
// bare-name traffic reaches both versions in roughly those proportions,
// pinned requests bypass the dice, and the route counters record the
// split.
func TestCanarySplit(t *testing.T) {
	reg := NewRegistry()
	v1 := stubModel("ab@v1", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 64}, runnerFunc(echoRunner))
	v2 := stubModel("ab@v2", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 64}, runnerFunc(echoRunner))
	defer v1.unload()
	defer v2.unload()
	reg.install(v1)
	reg.install(v2)
	if err := reg.SetCanary("ab", "v2", 10); err != nil {
		t.Fatal(err)
	}

	const n = 400
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		res, err := reg.Route("ab")
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Model.Name()]++
	}
	if counts["ab@v2"] == 0 {
		t.Fatal("canary version never routed at 10%")
	}
	if counts["ab@v2"] > n/2 {
		t.Fatalf("canary took %d/%d requests at a 10%% split", counts["ab@v2"], n)
	}
	if counts["ab@v1"] < n/2 {
		t.Fatalf("stable took only %d/%d requests at a 10%% split", counts["ab@v1"], n)
	}
	if got := v2.Metrics().Routes(RouteCanary); got != int64(counts["ab@v2"]) {
		t.Errorf("canary route counter = %d, want %d", got, counts["ab@v2"])
	}
	if got := v1.Metrics().Routes(RouteStable); got != int64(counts["ab@v1"]) {
		t.Errorf("stable route counter = %d, want %d", got, counts["ab@v1"])
	}

	// Pinning bypasses the dice.
	res, err := reg.Route("ab@v2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != v2 || res.Route != RoutePinned {
		t.Fatalf("pinned route = (%s, %s), want (ab@v2, pinned)", res.Model.Name(), res.Route)
	}
}

// TestCanaryOverHTTP is the rollout acceptance scenario end-to-end: two
// versions behind one name with a 90/10 canary; the serving version and
// route ride back on response headers.
func TestCanaryOverHTTP(t *testing.T) {
	reg := NewRegistry()
	v1 := stubModel("web@v1", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 64}, runnerFunc(echoRunner))
	v2 := stubModel("web@v2", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 64}, runnerFunc(echoRunner))
	defer v1.unload()
	defer v2.unload()
	reg.install(v1)
	reg.install(v2)
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Configure the 90/10 split through the admin verb.
	code, data, _ := postJSON(t, srv.URL+"/v1/models/web:canary?version=v2&percent=10", "", nil)
	if code != http.StatusOK {
		t.Fatalf("canary verb: status %d: %s", code, data)
	}

	seen := map[string]int{}
	routes := map[string]int{}
	for i := 0; i < 120; i++ {
		code, data, hdr := postJSON(t, srv.URL+"/v1/models/web:predict", `{"instances": [[1]]}`, nil)
		if code != http.StatusOK {
			t.Fatalf("predict %d: status %d: %s", i, code, data)
		}
		seen[hdr.Get("X-Serving-Model")]++
		routes[hdr.Get("X-Serving-Route")]++
	}
	if seen["web@v1"] == 0 || seen["web@v2"] == 0 {
		t.Fatalf("canary split did not reach both versions: %v", seen)
	}
	if routes[RouteStable] == 0 || routes[RouteCanary] == 0 {
		t.Fatalf("route headers did not reflect the split: %v", routes)
	}

	// The rollout status endpoint reports the split.
	resp, err := http.Get(srv.URL + "/v1/models/web:rollout")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st RolloutStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("parsing rollout status: %v\n%s", err, data)
	}
	if st.Default != "v1" || st.Canary != "v2" || st.CanaryPercent != 10 {
		t.Fatalf("rollout status = %+v", st)
	}
}

// TestShadowMirrors verifies duplicate-and-discard routing: every
// bare-name request is mirrored to the shadow version, responses come
// only from the primary.
func TestShadowMirrors(t *testing.T) {
	reg := NewRegistry()
	v1 := stubModel("sh@v1", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 64}, addRunner(0))
	v2 := stubModel("sh@v2", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 64}, addRunner(100))
	defer v1.unload()
	defer v2.unload()
	reg.install(v1)
	reg.install(v2)
	if err := reg.SetShadow("sh", "v2"); err != nil {
		t.Fatal(err)
	}
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	const n = 5
	for i := 0; i < n; i++ {
		code, data, hdr := postJSON(t, srv.URL+"/v1/models/sh:predict", `{"instances": [[7]]}`, nil)
		if code != http.StatusOK {
			t.Fatalf("predict: status %d: %s", code, data)
		}
		// The primary echoes 7; the shadow would have returned 107.
		if !bytes.Contains(data, []byte("[7]")) {
			t.Fatalf("response leaked shadow output: %s", data)
		}
		if got := hdr.Get("X-Serving-Model"); got != "sh@v1" {
			t.Fatalf("served by %q, want primary sh@v1", got)
		}
	}

	// Shadow predictions are fire-and-forget; wait for them to land.
	deadline := time.Now().Add(5 * time.Second)
	for v2.Metrics().Requests("ok") != n {
		if time.Now().After(deadline) {
			t.Fatalf("shadow received %d requests, want %d", v2.Metrics().Requests("ok"), n)
		}
		time.Sleep(time.Millisecond)
	}
	if got := v2.Metrics().Routes(RouteShadow); got != n {
		t.Errorf("shadow route counter = %d, want %d", got, n)
	}
}

// TestPromoteHotSwap verifies zero-downtime promotion: under continuous
// bare-name load, promoting a new default loses no requests, and traffic
// flips to the new version. Run with -race this also exercises the
// registry's rollout locking.
func TestPromoteHotSwap(t *testing.T) {
	reg := NewRegistry()
	v1 := stubModel("hot@v1", Config{MaxBatchSize: 4, Workers: 2, QueueSize: 256}, runnerFunc(echoRunner))
	v2 := stubModel("hot@v2", Config{MaxBatchSize: 4, Workers: 2, QueueSize: 256}, runnerFunc(echoRunner))
	defer v1.unload()
	defer v2.unload()
	reg.install(v1)
	reg.install(v2)

	inst := Instance{Values: []float32{1}, Shape: []int{1}}
	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := reg.Route("hot")
				if err != nil {
					failures.Add(1)
					continue
				}
				if _, err := res.Model.Predict(context.Background(), inst); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := reg.Promote("hot", "v2"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the promotion", n)
	}
	res, err := reg.Route("hot")
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != v2 {
		t.Fatalf("post-promotion default = %s, want hot@v2", res.Model.Name())
	}
	if v2.Metrics().Requests("ok") == 0 {
		t.Fatal("promoted version never served")
	}
}

// TestRegistryChurnUnderLoad hammers version install/promote/unload while
// concurrent routed predicts run — the -race soak for the control plane.
func TestRegistryChurnUnderLoad(t *testing.T) {
	reg := NewRegistry()
	base := stubModel("churn@v0", Config{MaxBatchSize: 4, Workers: 2, QueueSize: 256}, runnerFunc(echoRunner))
	reg.install(base)
	defer reg.Close()

	inst := Instance{Values: []float32{1}, Shape: []int{1}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := reg.Route("churn")
				if err != nil {
					continue // transiently between versions
				}
				// Unloaded-under-us is acceptable; panics and races are not.
				_, _ = res.Model.Predict(context.Background(), inst)
			}
		}()
	}

	for i := 1; i <= 25; i++ {
		v := fmt.Sprintf("v%d", i)
		m := stubModel("churn@"+v, Config{MaxBatchSize: 4, Workers: 2, QueueSize: 256}, runnerFunc(echoRunner))
		reg.install(m)
		if err := reg.Promote("churn", v); err != nil {
			t.Fatalf("promote %s: %v", v, err)
		}
		if err := reg.Unload(fmt.Sprintf("churn@v%d", i-1)); err != nil {
			t.Fatalf("unload v%d: %v", i-1, err)
		}
	}
	close(stop)
	wg.Wait()

	names := reg.Names()
	if len(names) != 1 || names[0] != "churn@v25" {
		t.Fatalf("surviving versions = %v, want [churn@v25]", names)
	}
}

// TestTenantShedding verifies weighted-fair admission: a tenant over its
// share is shed with 429 + Retry-After while another tenant still gets
// in.
func TestTenantShedding(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	run := runnerFunc(func(batch []Instance) ([]Instance, error) {
		entered <- struct{}{}
		<-block
		return batch, nil
	})
	m := stubModel("wfq", Config{MaxBatchSize: 1, QueueSize: 2, Workers: 1}, run)
	m.adm = newAdmission(map[string]int{"alice": 1, "bob": 1}, 2)
	defer m.unload()
	reg := NewRegistry()
	reg.install(m)
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Alice fills her whole share (capacity 2, only active tenant).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, data, _ := postJSON(t, srv.URL+"/v1/models/wfq:predict",
				`{"instances": [[1]]}`, map[string]string{"X-Tenant-ID": "alice"})
			if code != http.StatusOK {
				t.Errorf("admitted alice request: status %d: %s", code, data)
			}
		}()
	}
	<-entered // one executing
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second alice request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Alice's third concurrent request exceeds her share → shed.
	code, data, hdr := postJSON(t, srv.URL+"/v1/models/wfq:predict",
		`{"instances": [[1]]}`, map[string]string{"X-Tenant-ID": "alice"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-share request: status %d (%s), want 429", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !bytes.Contains(data, []byte("tenant_quota")) {
		t.Fatalf("shed response does not name the quota: %s", data)
	}
	if m.Metrics().Requests("shed") == 0 {
		t.Fatal("shed outcome not recorded")
	}

	// Bob is within his recomputed share (capacity 2 split two ways) and
	// admission lets him through to the queue.
	release, ok := m.adm.tryAdmit("bob")
	if !ok {
		t.Fatal("bob shed while under his share")
	}
	release()

	// Per-tenant state surfaces in /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `serving_tenant_shed_total{model="wfq",tenant="alice"} 1`) {
		t.Errorf("/metrics missing alice's shed counter:\n%.1200s", metrics)
	}

	close(block)
	wg.Wait()
}

// TestSequenceGraphE2E runs a preprocessor → classifier sequence graph
// over HTTP and verifies the stages link up in the downloaded trace
// under one request ID.
func TestSequenceGraphE2E(t *testing.T) {
	reg := NewRegistry()
	pre := stubModel("pre", Config{MaxBatchSize: 4, Workers: 1, QueueSize: 64}, scaleRunner(2))
	clf := stubModel("clf", Config{MaxBatchSize: 4, Workers: 1, QueueSize: 64}, addRunner(10))
	defer pre.unload()
	defer clf.unload()
	reg.install(pre)
	reg.install(clf)
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	err := api.RegisterGraph(GraphSpec{
		Name: "imgflow",
		Root: &GraphNode{Kind: NodeSequence, Steps: []*GraphNode{
			{Kind: NodeModel, Model: "pre"},
			{Kind: NodeModel, Model: "clf"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	code, data, hdr := postJSON(t, srv.URL+"/v1/graphs/imgflow:predict",
		`{"instances": [[1, 2]]}`, map[string]string{"X-Request-ID": "gtrace"})
	if code != http.StatusOK {
		t.Fatalf("graph predict: status %d: %s", code, data)
	}
	if hdr.Get("X-Request-ID") != "gtrace" {
		t.Errorf("graph response echoed X-Request-ID %q", hdr.Get("X-Request-ID"))
	}
	var out struct {
		Predictions [][]float64 `json:"predictions"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("parsing graph response: %v\n%s", err, data)
	}
	// [1,2] ×2 → [2,4], +10 → [12,14].
	if len(out.Predictions) != 1 || len(out.Predictions[0]) != 2 ||
		out.Predictions[0][0] != 12 || out.Predictions[0][1] != 14 {
		t.Fatalf("graph output = %v, want [[12 14]]", out.Predictions)
	}

	// Both stages must appear in the trace under the request's ID, tagged
	// with their graph paths.
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var parsed struct {
		TraceEvents []struct {
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &parsed); err != nil {
		t.Fatal(err)
	}
	traceIDs := map[string]bool{}
	for _, te := range parsed.TraceEvents {
		if te.Cat == "request" {
			if id, _ := te.Args["trace"].(string); id != "" {
				traceIDs[id] = true
			}
		}
	}
	for _, want := range []string{"gtrace/imgflow/root.0", "gtrace/imgflow/root.1"} {
		if !traceIDs[want] {
			t.Errorf("trace missing stage %q; tagged: %v", want, traceIDs)
		}
	}
}

// TestEnsembleAndSwitchGraphs covers the other two composition nodes:
// ensemble fan-out with an average combiner, and content-based switch
// routing.
func TestEnsembleAndSwitchGraphs(t *testing.T) {
	reg := NewRegistry()
	a := stubModel("ens-a", Config{MaxBatchSize: 4, Workers: 1, QueueSize: 64}, addRunner(1))
	b := stubModel("ens-b", Config{MaxBatchSize: 4, Workers: 1, QueueSize: 64}, addRunner(3))
	c := stubModel("ens-c", Config{MaxBatchSize: 4, Workers: 1, QueueSize: 64}, runnerFunc(echoRunner))
	defer a.unload()
	defer b.unload()
	defer c.unload()
	reg.install(a)
	reg.install(b)
	reg.install(c)
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	if err := api.RegisterGraph(GraphSpec{
		Name: "avg",
		Root: &GraphNode{Kind: NodeEnsemble, Combine: CombineAverage, Members: []*GraphNode{
			{Kind: NodeModel, Model: "ens-a"},
			{Kind: NodeModel, Model: "ens-b"},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := api.RegisterGraph(GraphSpec{
		Name: "router",
		Root: &GraphNode{Kind: NodeSwitch, Cases: []SwitchCase{
			{Value: 1, Node: &GraphNode{Kind: NodeModel, Model: "ens-a"}},
			{Value: 2, Node: &GraphNode{Kind: NodeModel, Model: "ens-b"}},
		}, Default: &GraphNode{Kind: NodeModel, Model: "ens-c"}},
	}); err != nil {
		t.Fatal(err)
	}

	// Ensemble: (5+1 + 5+3)/2 = 7.
	code, data, _ := postJSON(t, srv.URL+"/v1/graphs/avg:predict", `{"instances": [[5]]}`, nil)
	if code != http.StatusOK {
		t.Fatalf("ensemble predict: status %d: %s", code, data)
	}
	if !bytes.Contains(data, []byte("[7]")) {
		t.Fatalf("ensemble average = %s, want [[7]]", data)
	}

	// Switch: selector 1 → +1, selector 2 → +3, selector 9 → default echo.
	for _, tc := range []struct{ in, want string }{
		{`[[1]]`, "[2]"},
		{`[[2]]`, "[5]"},
		{`[[9]]`, "[9]"},
	} {
		code, data, _ := postJSON(t, srv.URL+"/v1/graphs/router:predict",
			`{"instances": `+tc.in+`}`, nil)
		if code != http.StatusOK {
			t.Fatalf("switch predict %s: status %d: %s", tc.in, code, data)
		}
		if !bytes.Contains(data, []byte(tc.want)) {
			t.Fatalf("switch %s = %s, want %s", tc.in, data, tc.want)
		}
	}

	// Graph listing surfaces both.
	resp, err := http.Get(srv.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(data, []byte(`"avg"`)) || !bytes.Contains(data, []byte(`"router"`)) {
		t.Fatalf("graph listing = %s", data)
	}
}

// TestReadyzAndDrain covers the readiness endpoint and graceful drain:
// /readyz turns 503 during drain and predicts are refused while health
// stays up.
func TestReadyzAndDrain(t *testing.T) {
	reg := NewRegistry()
	m := stubModel("drainme", Config{MaxBatchSize: 1, Workers: 1, QueueSize: 8}, runnerFunc(echoRunner))
	defer m.unload()
	reg.install(m)
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz before drain: %d %q", code, body)
	}

	api.BeginDrain()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz during drain: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatal("liveness must stay up during drain")
	}
	code, data, _ := postJSON(t, srv.URL+"/v1/models/drainme:predict", `{"instances": [[1]]}`, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("predict during drain: status %d (%s), want 503", code, data)
	}

	// A registry with a still-loading model is not ready either.
	reg2 := NewRegistry()
	loading := &Model{
		name: "later", backend: "cpu", cfg: Config{}.withDefaults(),
		metrics: NewMetrics(), state: StateLoading, ready: make(chan struct{}),
	}
	reg2.install(loading)
	api2 := NewServer(reg2)
	defer api2.Close()
	srv2 := httptest.NewServer(api2)
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with loading model: %d, want 503", resp.StatusCode)
	}
}

// TestShedErrorContract pins the error-wrapping semantics the HTTP layer
// and metrics labels rely on.
func TestShedErrorContract(t *testing.T) {
	qf := &ShedError{Reason: "queue_full", RetryAfter: time.Second}
	if !errors.Is(qf, ErrQueueFull) {
		t.Fatal("queue_full ShedError must unwrap to ErrQueueFull")
	}
	if outcomeLabel(qf) != "queue_full" {
		t.Fatalf("queue_full label = %q", outcomeLabel(qf))
	}
	tq := &ShedError{Reason: "tenant_quota", Tenant: "alice", RetryAfter: time.Second}
	if errors.Is(tq, ErrQueueFull) {
		t.Fatal("tenant_quota ShedError must not claim queue-full")
	}
	if outcomeLabel(tq) != "shed" {
		t.Fatalf("tenant_quota label = %q", outcomeLabel(tq))
	}
	if statusFor(tq) != http.StatusTooManyRequests {
		t.Fatalf("tenant_quota status = %d, want 429", statusFor(tq))
	}
	if statusFor(qf) != http.StatusTooManyRequests {
		t.Fatalf("queue_full status = %d, want 429", statusFor(qf))
	}
}
