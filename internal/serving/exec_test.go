package serving

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/converter"
	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/savedmodel"
)

// TestExecOptionsPrecedence: the deprecated Disable* booleans seed the
// model's execution config, and the Exec option list overrides them —
// callers on the unified surface always win.
func TestExecOptionsPrecedence(t *testing.T) {
	m := newModel("m", ModelOptions{DisableOptimize: true, DisableVerify: true})
	if m.exec.OptimizeOn() || m.exec.VerifyOn() {
		t.Fatalf("legacy booleans ignored: OptimizeOn=%v VerifyOn=%v", m.exec.OptimizeOn(), m.exec.VerifyOn())
	}

	m = newModel("m", ModelOptions{
		DisableOptimize: true,
		Exec:            []exec.Option{exec.WithOptimize(true)},
	})
	if !m.exec.OptimizeOn() {
		t.Fatal("explicit Exec optimize setting must override DisableOptimize")
	}

	m = newModel("m", ModelOptions{Exec: []exec.Option{
		exec.WithWorkers(2), exec.WithGEMM(exec.GEMMNaive), exec.WithQuantizedCompute(true),
	}})
	if m.exec.Workers != 2 || m.exec.GEMM != exec.GEMMNaive || !m.exec.QuantizedCompute {
		t.Fatalf("Exec options lost in resolution: %+v", m.exec)
	}
	if !m.exec.OptimizeOn() || !m.exec.VerifyOn() {
		t.Fatal("unset optimize/verify must stay on")
	}
}

// TestQuantizedReplicatedServing: an int8 artifact served by a replica
// pool with quantized compute and an explicit worker budget. Heavy
// concurrent traffic doubles as the race-detector workout for the
// worker pool + replica pool combination.
func TestQuantizedReplicatedServing(t *testing.T) {
	const classes = 10
	model, err := models.MobileNetV1(models.MobileNetConfig{
		Alpha: 0.25, InputSize: 96, NumClasses: classes, IncludeTop: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Dispose()
	g, err := savedmodel.FromSequential(model, false)
	if err != nil {
		t.Fatal(err)
	}
	store := converter.NewMemStore()
	if _, err := converter.Convert(g, store, converter.Options{
		QuantizationScheme: converter.QuantizationInt8,
	}); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	defer reg.Close()
	m, err := reg.Load("mnet-int8", store, ModelOptions{
		Backend:  "node",
		Replicas: 3,
		Batching: Config{MaxBatchSize: 4, BatchTimeout: 5 * time.Millisecond, QueueSize: 64},
		Exec: []exec.Option{
			exec.WithQuantizedCompute(true),
			exec.WithWorkers(2),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	img := Instance{Values: make([]float32, 96*96*3), Shape: []int{96, 96, 3}}
	for i := range img.Values {
		img.Values[i] = float32(i%255) / 255
	}
	const requests = 24
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := m.Predict(ctx, img)
			if err != nil {
				errs <- err
				return
			}
			if len(out.Values) != classes {
				errs <- fmt.Errorf("output has %d values, want %d", len(out.Values), classes)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
