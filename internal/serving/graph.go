package serving

// This file implements inference graphs: server-side composition of
// served models into one request, KServe-inference-graph style. A graph
// is a tree of nodes — model (leaf), sequence (preprocessor → model →
// postprocessor chains), ensemble (parallel fan-out with a combiner) and
// switch (content-based routing) — executed per instance with every
// model stage riding the existing request-flow tracing: stage N of graph
// g under request R carries trace ID "R/g/<path>", so /debug/trace shows
// the whole fan-through as one linked family.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Graph node kinds.
const (
	NodeModel    = "model"
	NodeSequence = "sequence"
	NodeEnsemble = "ensemble"
	NodeSwitch   = "switch"
)

// Ensemble combiners.
const (
	CombineAverage = "average"
	CombineSum     = "sum"
	CombineConcat  = "concat"
)

// SwitchCase is one arm of a switch node: taken when the selector value
// equals Value.
type SwitchCase struct {
	Value float64    `json:"value"`
	Node  *GraphNode `json:"node"`
}

// GraphNode is one node of an inference graph.
type GraphNode struct {
	// Kind is model, sequence, ensemble or switch.
	Kind string `json:"kind"`
	// Model names the served model (routing applies: bare names follow
	// the group's rollout, base@version pins). Kind "model" only.
	Model string `json:"model,omitempty"`
	// Steps chain for kind "sequence": each step's output feeds the next.
	Steps []*GraphNode `json:"steps,omitempty"`
	// Members fan out in parallel for kind "ensemble".
	Members []*GraphNode `json:"members,omitempty"`
	// Combine merges ensemble member outputs: average or sum require
	// identical member shapes and merge elementwise; concat flattens and
	// concatenates into one 1-D instance.
	Combine string `json:"combine,omitempty"`
	// SelectIndex picks which element of the incoming instance a switch
	// node compares against its cases (default 0: the first value).
	SelectIndex int `json:"select_index,omitempty"`
	// Cases are the switch arms; Default runs when none match. A switch
	// with no matching arm and no default fails the request.
	Cases   []SwitchCase `json:"cases,omitempty"`
	Default *GraphNode   `json:"default,omitempty"`
}

// GraphSpec is one named inference graph.
type GraphSpec struct {
	Name string     `json:"name"`
	Root *GraphNode `json:"root"`
}

// validate checks a node tree's structure (model existence is checked at
// request time — models load asynchronously and versions roll).
func (n *GraphNode) validate(path string) error {
	if n == nil {
		return fmt.Errorf("serving: graph node %s is null", path)
	}
	switch n.Kind {
	case NodeModel:
		if n.Model == "" {
			return fmt.Errorf("serving: graph node %s: model node needs a model name", path)
		}
	case NodeSequence:
		if len(n.Steps) == 0 {
			return fmt.Errorf("serving: graph node %s: sequence needs steps", path)
		}
		for i, step := range n.Steps {
			if err := step.validate(fmt.Sprintf("%s.%d", path, i)); err != nil {
				return err
			}
		}
	case NodeEnsemble:
		if len(n.Members) == 0 {
			return fmt.Errorf("serving: graph node %s: ensemble needs members", path)
		}
		switch n.Combine {
		case CombineAverage, CombineSum, CombineConcat:
		case "":
			return fmt.Errorf("serving: graph node %s: ensemble needs a combine mode", path)
		default:
			return fmt.Errorf("serving: graph node %s: unknown combine %q", path, n.Combine)
		}
		for i, m := range n.Members {
			if err := m.validate(fmt.Sprintf("%s.%d", path, i)); err != nil {
				return err
			}
		}
	case NodeSwitch:
		if len(n.Cases) == 0 && n.Default == nil {
			return fmt.Errorf("serving: graph node %s: switch needs cases or a default", path)
		}
		for i, c := range n.Cases {
			if err := c.Node.validate(fmt.Sprintf("%s.case%d", path, i)); err != nil {
				return err
			}
		}
		if n.Default != nil {
			if err := n.Default.validate(path + ".default"); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("serving: graph node %s: unknown kind %q", path, n.Kind)
	}
	return nil
}

// RegisterGraph adds (or replaces) a named inference graph on the
// server.
func (s *Server) RegisterGraph(spec GraphSpec) error {
	if spec.Name == "" || strings.ContainsAny(spec.Name, "/:") {
		return fmt.Errorf("serving: bad graph name %q", spec.Name)
	}
	if err := spec.Root.validate("root"); err != nil {
		return err
	}
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	sp := spec
	s.graphs[spec.Name] = &sp
	return nil
}

// UnregisterGraph removes a named graph.
func (s *Server) UnregisterGraph(name string) {
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	delete(s.graphs, name)
}

// graphNames lists registered graphs, sorted.
func (s *Server) graphNames() []string {
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	out := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// runGraphNode executes one node for one instance. path locates the node
// in the tree; every model stage's trace ID is "<reqID>/<path>" so the
// request's hops through the graph link up in /debug/trace.
func (s *Server) runGraphNode(ctx context.Context, n *GraphNode, inst Instance, reqID, path string) (Instance, error) {
	switch n.Kind {
	case NodeModel:
		res, err := s.reg.Route(n.Model)
		if err != nil {
			return Instance{}, fmt.Errorf("serving: graph node %s: model %q: %w", path, n.Model, err)
		}
		if res.Resurrected {
			if err := res.Model.WaitReady(ctx); err != nil {
				return Instance{}, fmt.Errorf("serving: graph node %s: model %q: %w", path, n.Model, err)
			}
		}
		out, err := res.Model.Predict(WithRequestID(ctx, reqID+"/"+path), inst)
		if err != nil {
			return Instance{}, fmt.Errorf("serving: graph node %s: model %q: %w", path, n.Model, err)
		}
		return out, nil

	case NodeSequence:
		cur := inst
		for i, step := range n.Steps {
			out, err := s.runGraphNode(ctx, step, cur, reqID, fmt.Sprintf("%s.%d", path, i))
			if err != nil {
				return Instance{}, err
			}
			cur = out
		}
		return cur, nil

	case NodeEnsemble:
		outs := make([]Instance, len(n.Members))
		errs := make([]error, len(n.Members))
		var wg sync.WaitGroup
		for i, m := range n.Members {
			wg.Add(1)
			go func(i int, m *GraphNode) {
				defer wg.Done()
				outs[i], errs[i] = s.runGraphNode(ctx, m, inst, reqID, fmt.Sprintf("%s.%d", path, i))
			}(i, m)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return Instance{}, err
			}
		}
		return combineInstances(n.Combine, outs, path)

	case NodeSwitch:
		idx := n.SelectIndex
		if idx < 0 || idx >= len(inst.Values) {
			return Instance{}, fmt.Errorf("serving: graph node %s: select_index %d out of range for instance of %d values",
				path, idx, len(inst.Values))
		}
		v := float64(inst.Values[idx])
		for i, c := range n.Cases {
			if v == c.Value {
				return s.runGraphNode(ctx, c.Node, inst, reqID, fmt.Sprintf("%s.case%d", path, i))
			}
		}
		if n.Default != nil {
			return s.runGraphNode(ctx, n.Default, inst, reqID, path+".default")
		}
		return Instance{}, fmt.Errorf("serving: graph node %s: no case matches selector %v and no default", path, v)
	}
	return Instance{}, fmt.Errorf("serving: graph node %s: unknown kind %q", path, n.Kind)
}

// combineInstances merges ensemble member outputs.
func combineInstances(mode string, outs []Instance, path string) (Instance, error) {
	switch mode {
	case CombineAverage, CombineSum:
		base := outs[0]
		merged := append([]float32(nil), base.Values...)
		for _, o := range outs[1:] {
			if len(o.Values) != len(merged) {
				return Instance{}, fmt.Errorf("serving: graph node %s: %s requires equal member outputs (%d vs %d values)",
					path, mode, len(merged), len(o.Values))
			}
			for i, v := range o.Values {
				merged[i] += v
			}
		}
		if mode == CombineAverage {
			n := float32(len(outs))
			for i := range merged {
				merged[i] /= n
			}
		}
		return Instance{Values: merged, Shape: append([]int(nil), base.Shape...)}, nil
	case CombineConcat:
		var merged []float32
		for _, o := range outs {
			merged = append(merged, o.Values...)
		}
		return Instance{Values: merged, Shape: []int{len(merged)}}, nil
	}
	return Instance{}, fmt.Errorf("serving: graph node %s: unknown combine %q", path, mode)
}

// handleGraphList serves GET /v1/graphs.
func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.graphNames()})
}

// handleGraph serves GET /v1/graphs/{name} (the spec) and
// POST /v1/graphs/{name}:predict (execution), mirroring the model
// endpoint's verb-after-colon convention and predict wire format.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	name, verb := rest, ""
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		name, verb = rest[:i], rest[i+1:]
	}
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad graph path", http.StatusNotFound)
		return
	}
	s.graphMu.Lock()
	spec, ok := s.graphs[name]
	s.graphMu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("graph %q not found", name)})
		return
	}
	switch {
	case verb == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, spec)
	case verb == "predict" && r.Method == http.MethodPost:
		s.handleGraphPredict(w, r, spec)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleGraphPredict runs every instance through the graph. Instances
// fan out concurrently (each instance's model stages still coalesce into
// batches with everyone else's via the per-model schedulers).
func (s *Server) handleGraphPredict(w http.ResponseWriter, r *http.Request, spec *GraphSpec) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": ErrShuttingDown.Error()})
		return
	}
	insts, reqID, ok := s.decodePredict(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if tenant := r.Header.Get("X-Tenant-ID"); tenant != "" {
		ctx = WithTenant(ctx, tenant)
	}
	outs := make([]Instance, len(insts))
	errs := make([]error, len(insts))
	var wg sync.WaitGroup
	for i := range insts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := reqID
			if len(insts) > 1 {
				id = fmt.Sprintf("%s#%d", reqID, i)
			}
			outs[i], errs[i] = s.runGraphNode(ctx, spec.Root, insts[i], id+"/"+spec.Name, "root")
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.writePredictError(w, err)
			return
		}
	}
	preds := make([]any, len(outs))
	for i, out := range outs {
		preds[i] = out.Render()
	}
	writeJSON(w, http.StatusOK, map[string]any{"predictions": preds})
}

// decodePredict parses the shared predict wire format and stamps the
// X-Request-ID response header. ok=false means the error response was
// already written.
func (s *Server) decodePredict(w http.ResponseWriter, r *http.Request) ([]Instance, string, bool) {
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed request body: " + err.Error()})
		return nil, "", false
	}
	if len(req.Instances) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "no instances in request"})
		return nil, "", false
	}
	insts := make([]Instance, len(req.Instances))
	for i, raw := range req.Instances {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return nil, "", false
		}
		inst, err := ParseInstance(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return nil, "", false
		}
		insts[i] = inst
	}
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = generateRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	return insts, reqID, true
}
