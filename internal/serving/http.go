package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// maxBodyBytes bounds a predict request body (64 MiB of JSON).
const maxBodyBytes = 64 << 20

// Server exposes a Registry over the KServe-V1-style HTTP surface:
//
//	GET  /v1/models                     → {"models": [...]}
//	GET  /v1/models/{name}              → readiness + state
//	POST /v1/models/{name}:predict      → {"instances": [...]} → {"predictions": [...]}
//	GET  /healthz                       → liveness
//	GET  /metrics                       → Prometheus-style text
//	GET  /debug/trace?seconds=N         → Chrome trace-event JSON download
//	GET  /debug/memory                  → engine + device memory JSON
//	GET  /debug/memory?leaks=N          → + N-second tensor-leak capture
//
// Every predict response echoes an X-Request-ID header — honored from
// the inbound request or minted here — and the same ID tags the
// request's stage events in /debug/trace, so one slow HTTP response can
// be traced to its queue wait, batch, and execution.
//
// The server registers a trace recorder and a stats aggregator on the
// engine's telemetry hub, so /metrics carries per-model per-kernel
// breakdowns and /debug/trace serves the last seconds of execution as a
// chrome://tracing-loadable file. Close unregisters both.
type Server struct {
	reg        *Registry
	mux        *http.ServeMux
	trace      *telemetry.Recorder
	stats      *telemetry.Stats
	unregister func()
}

// NewServer wraps a registry in the HTTP API and attaches the telemetry
// collectors to the global engine's hub.
func NewServer(reg *Registry) *Server {
	s := &Server{
		reg:   reg,
		mux:   http.NewServeMux(),
		trace: telemetry.NewRecorder(0),
		stats: telemetry.NewStats(),
	}
	hub := core.Global().Telemetry()
	removeTrace := hub.Register(s.trace)
	removeStats := hub.Register(s.stats)
	s.unregister = func() {
		removeTrace()
		removeStats()
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/memory", s.handleMemory)
	s.mux.HandleFunc("/v1/models", s.handleList)
	s.mux.HandleFunc("/v1/models/", s.handleModel)
	return s
}

// Close detaches the server's telemetry collectors from the engine hub.
// Idempotent; the registry is left running (close it separately).
func (s *Server) Close() { s.unregister() }

// Stats exposes the server's kernel-stats aggregator (tests, embedding).
func (s *Server) Stats() *telemetry.Stats { return s.stats }

// Trace exposes the server's trace recorder.
func (s *Server) Trace() *telemetry.Recorder { return s.trace }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, renderMetrics(s.reg.Snapshots(), s.stats))
}

// handleTrace downloads the retained trace ring as Chrome trace-event
// JSON. ?seconds=N restricts the download to events from the last N
// seconds; absent or 0 downloads the whole ring.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var since time.Time
	if q := r.URL.Query().Get("seconds"); q != "" {
		sec, err := strconv.ParseFloat(q, 64)
		if err != nil || sec < 0 {
			http.Error(w, "bad seconds parameter", http.StatusBadRequest)
			return
		}
		if sec > 0 {
			since = time.Now().Add(-time.Duration(sec * float64(time.Second)))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	//lint:ignore operr headers are already written; a streaming failure here means the client went away and has no recovery
	_ = s.trace.WriteChromeTrace(w, since)
}

// memoryReport is the JSON shape of GET /debug/memory.
type memoryReport struct {
	Backend string                  `json:"backend"`
	Engine  core.MemoryInfo         `json:"engine"`
	Device  *telemetry.DeviceMemory `json:"device,omitempty"`
	Leaks   *telemetry.LeakReport   `json:"leaks,omitempty"`
}

// maxLeakCaptureSeconds caps how long /debug/memory?leaks=N holds the
// engine's single lifetime-tracker slot.
const maxLeakCaptureSeconds = 30

// handleMemory reports the engine's tensor/byte counters and, when the
// active backend exposes device memory (webgl/glsim texture residency,
// recycler occupancy, paging pressure), that too. ?leaks=N additionally
// installs a tensor-lifetime tracker for N seconds (capped) and attaches
// a LeakReport attributing the tensors allocated-and-not-disposed during
// the window to their allocation sites — leak triage against a live
// server, no restart required.
func (s *Server) handleMemory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	eng := core.Global()
	rep := memoryReport{Backend: eng.BackendName(), Engine: eng.Memory()}
	if dm, ok := eng.Backend().(interface {
		DeviceMemory() *telemetry.DeviceMemory
	}); ok {
		rep.Device = dm.DeviceMemory()
	}
	if q := r.URL.Query().Get("leaks"); q != "" {
		sec, err := strconv.ParseFloat(q, 64)
		if err != nil || sec <= 0 {
			http.Error(w, "bad leaks parameter", http.StatusBadRequest)
			return
		}
		if sec > maxLeakCaptureSeconds {
			sec = maxLeakCaptureSeconds
		}
		lt := telemetry.NewLifetimeTracker(1)
		remove, err := eng.TrackLifetimes(lt)
		if err != nil {
			// One capture at a time: the tracker slot is already taken
			// (another capture, or a tfjs-profile -leaks run).
			writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
			return
		}
		select {
		case <-time.After(time.Duration(sec * float64(time.Second))):
		case <-r.Context().Done():
		}
		remove()
		leaks := lt.Report()
		leaks.Device = rep.Device
		rep.Leaks = leaks
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.Names()})
}

// handleModel routes /v1/models/{name} (status) and
// /v1/models/{name}:predict (inference). The verb rides the last path
// segment after a colon, as in KServe/TF-Serving V1.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	name, verb := rest, ""
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		name, verb = rest[:i], rest[i+1:]
	}
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad model path", http.StatusNotFound)
		return
	}
	m, ok := s.reg.Get(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("model %q not found", name)})
		return
	}
	switch {
	case verb == "" && r.Method == http.MethodGet:
		st := m.Status()
		code := http.StatusOK
		if !st.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	case verb == "predict" && r.Method == http.MethodPost:
		s.handlePredict(w, r, m)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// predictRequest is the KServe V1 request body.
type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, m *Model) {
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed request body: " + err.Error()})
		return
	}
	if len(req.Instances) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "no instances in request"})
		return
	}
	insts := make([]Instance, len(req.Instances))
	for i, raw := range req.Instances {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		inst, err := ParseInstance(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		insts[i] = inst
	}

	// Trace ID: honor the caller's X-Request-ID, mint one otherwise, and
	// echo it on the response so the caller can correlate this HTTP
	// exchange with the request's stage events in /debug/trace.
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = generateRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)

	// Each instance is its own schedulable unit so the micro-batcher can
	// coalesce across requests; a multi-instance request fans out here
	// and joins below. Fanned-out instances get a per-instance suffix so
	// their spans stay distinguishable under one trace ID.
	outs := make([]Instance, len(insts))
	errs := make([]error, len(insts))
	if len(insts) == 1 {
		outs[0], errs[0] = m.Predict(WithRequestID(r.Context(), reqID), insts[0])
	} else {
		var wg sync.WaitGroup
		for i := range insts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := WithRequestID(r.Context(), fmt.Sprintf("%s#%d", reqID, i))
				outs[i], errs[i] = m.Predict(ctx, insts[i])
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			writeJSON(w, statusFor(err), map[string]any{"error": err.Error()})
			return
		}
	}
	preds := make([]any, len(outs))
	for i, out := range outs {
		preds[i] = out.Render()
	}
	writeJSON(w, http.StatusOK, map[string]any{"predictions": preds})
}

// statusFor maps serving errors onto HTTP status codes: queue-full is
// backpressure (429), not-ready is 503, deadline is 504, and op errors
// (bad instance shapes) are the client's fault (400).
func statusFor(err error) int {
	var opErr *core.OpError
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &opErr):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
