package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// maxBodyBytes bounds a predict request body (64 MiB of JSON).
const maxBodyBytes = 64 << 20

// Server exposes a Registry over the KServe-V1-style HTTP surface:
//
//	GET  /v1/models                     → {"models": [...]}
//	GET  /v1/models/{name}              → readiness + state ({name} may be base@version)
//	POST /v1/models/{name}:predict      → {"instances": [...]} → {"predictions": [...]}
//	GET  /v1/models/{base}:rollout      → version set + routing state
//	POST /v1/models/{base}:promote      → ?version=v2: make v2 the default (hot swap)
//	POST /v1/models/{base}:canary       → ?version=v2&percent=10: weighted canary split
//	POST /v1/models/{base}:shadow       → ?version=v2: duplicate-and-discard mirror ("" clears)
//	POST /v1/models/{base}:evict        → ?idle=5m: LRU-evict idle versions registry-wide
//	GET  /v1/graphs                     → {"graphs": [...]}
//	POST /v1/graphs/{name}:predict      → run an inference graph (sequence/ensemble/switch)
//	GET  /healthz                       → liveness
//	GET  /readyz                        → readiness (503 while loading or draining)
//	GET  /metrics                       → Prometheus-style text
//	GET  /debug/trace?seconds=N         → Chrome trace-event JSON download
//	GET  /debug/memory                  → engine + device memory JSON
//	GET  /debug/memory?leaks=N          → + N-second tensor-leak capture
//
// Predicting against a bare model name routes through the group's
// rollout state (default/canary/shadow); base@version pins a version.
// The chosen version and route ride back on X-Serving-Model and
// X-Serving-Route headers. Requests carrying X-Tenant-ID are subject to
// that model's weighted-fair admission control; shed requests get 429
// with a Retry-After hint.
//
// Every predict response echoes an X-Request-ID header — honored from
// the inbound request or minted here — and the same ID tags the
// request's stage events in /debug/trace, so one slow HTTP response can
// be traced to its queue wait, batch, and execution.
//
// The server registers a trace recorder and a stats aggregator on the
// engine's telemetry hub, so /metrics carries per-model per-kernel
// breakdowns and /debug/trace serves the last seconds of execution as a
// chrome://tracing-loadable file. Close unregisters both.
type Server struct {
	reg        *Registry
	mux        *http.ServeMux
	trace      *telemetry.Recorder
	stats      *telemetry.Stats
	profiler   *telemetry.Profiler
	unregister func()
	draining   atomic.Bool

	graphMu sync.Mutex
	graphs  map[string]*GraphSpec
}

// NewServer wraps a registry in the HTTP API and attaches the telemetry
// collectors to the global engine's hub.
func NewServer(reg *Registry) *Server {
	s := &Server{
		reg:      reg,
		mux:      http.NewServeMux(),
		trace:    telemetry.NewRecorder(0),
		stats:    telemetry.NewStats(),
		profiler: telemetry.NewProfiler(),
		graphs:   map[string]*GraphSpec{},
	}
	hub := core.Global().Telemetry()
	removeTrace := hub.Register(s.trace)
	removeStats := hub.Register(s.stats)
	removeProfiler := hub.Register(s.profiler)
	s.unregister = func() {
		removeTrace()
		removeStats()
		removeProfiler()
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/memory", s.handleMemory)
	s.mux.HandleFunc("/v1/models", s.handleList)
	s.mux.HandleFunc("/v1/models/", s.handleModel)
	s.mux.HandleFunc("/v1/graphs", s.handleGraphList)
	s.mux.HandleFunc("/v1/graphs/", s.handleGraph)
	return s
}

// BeginDrain flips the server into draining: /readyz turns 503 so load
// balancers stop sending traffic, and new predicts are refused with
// ErrShuttingDown while in-flight requests finish. The SIGTERM half of
// graceful shutdown; the caller then waits and closes the registry.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close detaches the server's telemetry collectors from the engine hub.
// Idempotent; the registry is left running (close it separately).
func (s *Server) Close() { s.unregister() }

// Stats exposes the server's kernel-stats aggregator (tests, embedding).
func (s *Server) Stats() *telemetry.Stats { return s.stats }

// Trace exposes the server's trace recorder.
func (s *Server) Trace() *telemetry.Recorder { return s.trace }

// Profiler exposes the server's continuous kernel-cost profiler.
func (s *Server) Profiler() *telemetry.Profiler { return s.profiler }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady is the load-balancer readiness gate: 200 only when every
// registered model version finished loading and the server is not
// draining.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.reg.AllReady():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "loading")
	default:
		fmt.Fprintln(w, "ok")
	}
}

// openMetricsContentType is the negotiated content type for the
// OpenMetrics 1.0 text format.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// wantsOpenMetrics reports whether the request's Accept header asks for
// the OpenMetrics text format (what a Prometheus scraper sends).
func wantsOpenMetrics(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		if strings.Contains(accept, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// handleMetrics serves the metrics exposition. The historical flat text
// format stays the default; a scraper sending
// Accept: application/openmetrics-text gets the same samples as
// OpenMetrics 1.0 text (HELP/TYPE metadata, contiguous families, # EOF).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	expo := buildExposition(s.reg.Snapshots(), s.stats, s.profiler, s.trace)
	if wantsOpenMetrics(r) {
		w.Header().Set("Content-Type", openMetricsContentType)
		fmt.Fprint(w, expo.RenderOpenMetrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, expo.RenderLegacy())
}

// handleTrace downloads the retained trace ring as Chrome trace-event
// JSON. ?seconds=N restricts the download to events from the last N
// seconds; an absent parameter downloads the whole ring, and an explicit
// non-numeric or non-positive value is a client error (400) rather than a
// silent whole-ring download. The applied window rides back on
// X-Trace-Seconds ("all" for the whole ring) and the ring's overwrite
// count on X-Trace-Dropped-Events, so a truncated capture is detectable
// from the response alone.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var since time.Time
	applied := "all"
	if q := r.URL.Query().Get("seconds"); q != "" {
		sec, err := strconv.ParseFloat(q, 64)
		if err != nil || !(sec > 0) || math.IsInf(sec, 0) {
			http.Error(w, "bad seconds parameter: want a positive number", http.StatusBadRequest)
			return
		}
		since = time.Now().Add(-time.Duration(sec * float64(time.Second)))
		applied = strconv.FormatFloat(sec, 'g', -1, 64)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	w.Header().Set("X-Trace-Seconds", applied)
	w.Header().Set("X-Trace-Dropped-Events", strconv.FormatInt(s.trace.Dropped(), 10))
	//lint:ignore operr headers are already written; a streaming failure here means the client went away and has no recovery
	_ = s.trace.WriteChromeTrace(w, since)
}

// memoryReport is the JSON shape of GET /debug/memory.
type memoryReport struct {
	Backend string                  `json:"backend"`
	Engine  core.MemoryInfo         `json:"engine"`
	Device  *telemetry.DeviceMemory `json:"device,omitempty"`
	Leaks   *telemetry.LeakReport   `json:"leaks,omitempty"`
}

// maxLeakCaptureSeconds caps how long /debug/memory?leaks=N holds the
// engine's single lifetime-tracker slot.
const maxLeakCaptureSeconds = 30

// handleMemory reports the engine's tensor/byte counters and, when the
// active backend exposes device memory (webgl/glsim texture residency,
// recycler occupancy, paging pressure), that too. ?leaks=N additionally
// installs a tensor-lifetime tracker for N seconds (capped) and attaches
// a LeakReport attributing the tensors allocated-and-not-disposed during
// the window to their allocation sites — leak triage against a live
// server, no restart required.
func (s *Server) handleMemory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	eng := core.Global()
	rep := memoryReport{Backend: eng.BackendName(), Engine: eng.Memory()}
	if dm, ok := eng.Backend().(interface {
		DeviceMemory() *telemetry.DeviceMemory
	}); ok {
		rep.Device = dm.DeviceMemory()
	}
	if q := r.URL.Query().Get("leaks"); q != "" {
		sec, err := strconv.ParseFloat(q, 64)
		if err != nil || !(sec > 0) || math.IsInf(sec, 0) {
			http.Error(w, "bad leaks parameter: want a positive number", http.StatusBadRequest)
			return
		}
		if sec > maxLeakCaptureSeconds {
			sec = maxLeakCaptureSeconds
		}
		// Echo the window actually used, so a capped request (?leaks=600)
		// is visible to the caller instead of silently shortened.
		w.Header().Set("X-Leak-Capture-Seconds", strconv.FormatFloat(sec, 'g', -1, 64))
		lt := telemetry.NewLifetimeTracker(1)
		remove, err := eng.TrackLifetimes(lt)
		if err != nil {
			// One capture at a time: the tracker slot is already taken
			// (another capture, or a tfjs-profile -leaks run).
			writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
			return
		}
		select {
		case <-time.After(time.Duration(sec * float64(time.Second))):
		case <-r.Context().Done():
		}
		remove()
		leaks := lt.Report()
		leaks.Device = rep.Device
		rep.Leaks = leaks
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.Names()})
}

// handleModel routes /v1/models/{name} (status), {name}:predict
// (inference) and the rollout verbs (rollout/promote/canary/shadow/
// evict). The verb rides the last path segment after a colon, as in
// KServe/TF-Serving V1.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	name, verb := rest, ""
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		name, verb = rest[:i], rest[i+1:]
	}
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad model path", http.StatusNotFound)
		return
	}
	switch {
	case verb == "" && r.Method == http.MethodGet:
		m, ok := s.reg.Get(name)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("model %q not found", name)})
			return
		}
		st := m.Status()
		code := http.StatusOK
		if !st.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	case verb == "predict" && r.Method == http.MethodPost:
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": ErrShuttingDown.Error()})
			return
		}
		res, err := s.reg.Route(name)
		if err != nil {
			writeJSON(w, statusFor(err), map[string]any{"error": fmt.Sprintf("model %q not found", name)})
			return
		}
		s.handlePredict(w, r, res)
	case verb == "rollout" && r.Method == http.MethodGet:
		st, err := s.reg.Rollout(name)
		if err != nil {
			writeJSON(w, statusFor(err), map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	case r.Method == http.MethodPost &&
		(verb == "promote" || verb == "canary" || verb == "shadow" || verb == "evict"):
		s.handleRollout(w, r, name, verb)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleRollout executes one rollout mutation verb against a model group.
func (s *Server) handleRollout(w http.ResponseWriter, r *http.Request, base, verb string) {
	q := r.URL.Query()
	version := q.Get("version")
	var err error
	switch verb {
	case "promote":
		if version == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "promote requires ?version="})
			return
		}
		err = s.reg.Promote(base, version)
	case "canary":
		percent := 0
		if p := q.Get("percent"); p != "" {
			percent, err = strconv.Atoi(p)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad percent parameter"})
				return
			}
		}
		err = s.reg.SetCanary(base, version, percent)
	case "shadow":
		err = s.reg.SetShadow(base, version)
	case "evict":
		idle := time.Duration(0)
		if d := q.Get("idle"); d != "" {
			idle, err = time.ParseDuration(d)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad idle parameter"})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"evicted": s.reg.EvictIdle(idle)})
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNotFound) {
			code = http.StatusNotFound
		}
		writeJSON(w, code, map[string]any{"error": err.Error()})
		return
	}
	st, rerr := s.reg.Rollout(base)
	if rerr != nil {
		writeJSON(w, statusFor(rerr), map[string]any{"error": rerr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// predictRequest is the KServe V1 request body.
type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, res RouteResult) {
	m := res.Model
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed request body: " + err.Error()})
		return
	}
	if len(req.Instances) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "no instances in request"})
		return
	}
	insts := make([]Instance, len(req.Instances))
	for i, raw := range req.Instances {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		inst, err := ParseInstance(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		insts[i] = inst
	}

	// Trace ID: honor the caller's X-Request-ID, mint one otherwise, and
	// echo it on the response so the caller can correlate this HTTP
	// exchange with the request's stage events in /debug/trace.
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = generateRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	// Which version served this, and why — the observable half of a
	// canary rollout.
	w.Header().Set("X-Serving-Model", m.Name())
	w.Header().Set("X-Serving-Route", res.Route)

	baseCtx := r.Context()
	if tenant := r.Header.Get("X-Tenant-ID"); tenant != "" {
		baseCtx = WithTenant(baseCtx, tenant)
	}

	// A freshly resurrected (post-eviction) version is still pulling its
	// artifacts; wait for the lazy reload within the request's deadline.
	if res.Resurrected {
		if err := m.WaitReady(baseCtx); err != nil {
			s.writePredictError(w, err)
			return
		}
	}

	// Shadow traffic: duplicate the instances to the shadow version and
	// discard its responses. Fire-and-forget on a detached context so a
	// slow shadow never holds up (or gets cancelled by) the primary
	// response — exactly the production-soak semantics.
	if res.Shadow != nil {
		shadow := res.Shadow
		shadowCtx := context.WithoutCancel(baseCtx)
		for i := range insts {
			go func(i int) {
				ctx := WithRequestID(shadowCtx, fmt.Sprintf("%s/shadow#%d", reqID, i))
				//lint:ignore operr shadow responses are discarded by definition; errors surface via the shadow model's own metrics
				_, _ = shadow.Predict(ctx, insts[i])
			}(i)
		}
	}

	// Each instance is its own schedulable unit so the micro-batcher can
	// coalesce across requests; a multi-instance request fans out here
	// and joins below. Fanned-out instances get a per-instance suffix so
	// their spans stay distinguishable under one trace ID.
	outs := make([]Instance, len(insts))
	errs := make([]error, len(insts))
	if len(insts) == 1 {
		outs[0], errs[0] = m.Predict(WithRequestID(baseCtx, reqID), insts[0])
	} else {
		var wg sync.WaitGroup
		for i := range insts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := WithRequestID(baseCtx, fmt.Sprintf("%s#%d", reqID, i))
				outs[i], errs[i] = m.Predict(ctx, insts[i])
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			s.writePredictError(w, err)
			return
		}
	}
	preds := make([]any, len(outs))
	for i, out := range outs {
		preds[i] = out.Render()
	}
	writeJSON(w, http.StatusOK, map[string]any{"predictions": preds})
}

// writePredictError maps a predict error to its status, attaching the
// Retry-After backoff hint on shed (429) responses.
func (s *Server) writePredictError(w http.ResponseWriter, err error) {
	var shed *ShedError
	if errors.As(err, &shed) && shed.RetryAfter > 0 {
		w.Header().Set("Retry-After",
			strconv.Itoa(int(math.Ceil(shed.RetryAfter.Seconds()))))
	}
	writeJSON(w, statusFor(err), map[string]any{"error": err.Error()})
}

// statusFor maps serving errors onto HTTP status codes: queue-full and
// tenant sheds are backpressure (429), not-ready is 503, deadline is
// 504, and op errors (bad instance shapes) are the client's fault (400).
func statusFor(err error) int {
	var opErr *core.OpError
	var shed *ShedError
	switch {
	case errors.Is(err, ErrQueueFull), errors.As(err, &shed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &opErr):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
