package serving

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Metrics collects one model's serving statistics: request counts by
// outcome, a sliding-window latency distribution (the telemetry
// Distribution primitive, the same estimator backing per-kernel p50/p95),
// and the batch-size histogram that demonstrates (or falsifies)
// micro-batching.
type Metrics struct {
	mu sync.Mutex

	requests map[string]int64 // outcome → count ("ok", "queue_full", ...)

	// latency is the sliding window of end-to-end request latencies (ms).
	latency *telemetry.Distribution

	// batchSizes histograms executed batch sizes (size → executions).
	batchSizes map[int]int64

	// rejected counts submissions refused at the queue (ErrQueueFull) —
	// the backpressure signal operators alert on.
	rejected int64

	// stages holds per-stage latency distributions: queue_wait, gather,
	// execute, split — the request-flow breakdown behind the end-to-end
	// latency number.
	stages map[string]*telemetry.Distribution

	// routes counts routing decisions by label (stable, canary, shadow,
	// pinned) — the observability behind a rollout's traffic split.
	routes map[string]int64
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   map[string]int64{},
		latency:    telemetry.NewDistribution(),
		batchSizes: map[int]int64{},
		stages:     map[string]*telemetry.Distribution{},
		routes:     map[string]int64{},
	}
}

// ObserveRoute counts one routing decision (stable, canary, shadow,
// pinned).
func (m *Metrics) ObserveRoute(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[route]++
}

// Routes returns the count for one routing label.
func (m *Metrics) Routes(route string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routes[route]
}

// ObserveRequest records one finished request: its outcome label and, for
// successful requests, the end-to-end latency in milliseconds.
func (m *Metrics) ObserveRequest(outcome string, latencyMS float64) {
	m.mu.Lock()
	m.requests[outcome]++
	m.mu.Unlock()
	if outcome == "ok" {
		m.latency.Observe(latencyMS)
	}
}

// ObserveBatch records one executed batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSizes[size]++
}

// ObserveRejected counts one queue-full rejection.
func (m *Metrics) ObserveRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// Rejected returns the queue-full rejection count.
func (m *Metrics) Rejected() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected
}

// ObserveStage records one request's latency through a named serving
// stage (queue_wait, gather, execute, split).
func (m *Metrics) ObserveStage(stage string, ms float64) {
	m.mu.Lock()
	d, ok := m.stages[stage]
	if !ok {
		d = telemetry.NewDistribution()
		m.stages[stage] = d
	}
	m.mu.Unlock()
	d.Observe(ms)
}

// StagePercentiles returns the p50/p95/p99 of one stage's recent latency
// window. Zeroes when the stage has not been observed.
func (m *Metrics) StagePercentiles(stage string) (p50, p95, p99 float64) {
	m.mu.Lock()
	d := m.stages[stage]
	m.mu.Unlock()
	if d == nil {
		return 0, 0, 0
	}
	qs := d.Quantiles(0.50, 0.95, 0.99)
	return qs[0], qs[1], qs[2]
}

// Requests returns the count for one outcome label.
func (m *Metrics) Requests(outcome string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[outcome]
}

// MaxBatchObserved returns the largest executed batch size.
func (m *Metrics) MaxBatchObserved() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := 0
	for size := range m.batchSizes {
		if size > max {
			max = size
		}
	}
	return max
}

// Percentiles returns the p50/p95/p99 of the recent latency window, in
// milliseconds. Zeroes when no requests completed yet.
func (m *Metrics) Percentiles() (p50, p95, p99 float64) {
	qs := m.latency.Quantiles(0.50, 0.95, 0.99)
	return qs[0], qs[1], qs[2]
}

// StageLatency is one serving stage's quantile summary.
type StageLatency struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

// Snapshot is one model's metrics in exportable form.
type Snapshot struct {
	Requests      map[string]int64        `json:"requests"`
	LatencyP50    float64                 `json:"latency_ms_p50"`
	LatencyP95    float64                 `json:"latency_ms_p95"`
	LatencyP99    float64                 `json:"latency_ms_p99"`
	BatchSizes    map[int]int64           `json:"batch_sizes"`
	QueueDepth    int                     `json:"queue_depth"`
	QueueRejected int64                   `json:"queue_rejected"`
	Stages        map[string]StageLatency `json:"stages,omitempty"`
	Routes        map[string]int64        `json:"routes,omitempty"`
	Replicas      []ReplicaSnapshot       `json:"replicas,omitempty"`
	Tenants       []TenantSnapshot        `json:"tenants,omitempty"`
}

// snapshot captures the current state; queueDepth is sampled by the caller.
func (m *Metrics) snapshot(queueDepth int) Snapshot {
	p50, p95, p99 := m.Percentiles()
	m.mu.Lock()
	stages := make(map[string]*telemetry.Distribution, len(m.stages))
	for k, d := range m.stages {
		stages[k] = d
	}
	s := Snapshot{
		Requests:   make(map[string]int64, len(m.requests)),
		LatencyP50: p50, LatencyP95: p95, LatencyP99: p99,
		BatchSizes:    make(map[int]int64, len(m.batchSizes)),
		QueueDepth:    queueDepth,
		QueueRejected: m.rejected,
		Stages:        make(map[string]StageLatency, len(m.stages)),
	}
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	for k, v := range m.batchSizes {
		s.BatchSizes[k] = v
	}
	if len(m.routes) > 0 {
		s.Routes = make(map[string]int64, len(m.routes))
		for k, v := range m.routes {
			s.Routes[k] = v
		}
	}
	m.mu.Unlock()
	for k, d := range stages {
		qs := d.Quantiles(0.50, 0.95, 0.99)
		s.Stages[k] = StageLatency{P50: qs[0], P95: qs[1], P99: qs[2]}
	}
	return s
}

// modelOfSpan extracts the model label from a telemetry span name; spans
// are named "<model>:<signature>" by the registry.
func modelOfSpan(span string) string {
	if i := strings.Index(span, ":"); i >= 0 {
		return span[:i]
	}
	return span
}

// renderMetrics emits the Prometheus-style text exposition: per-model
// request/latency/batch series, per-model per-kernel breakdowns from the
// telemetry aggregator (nil skips them), and the engine's tensor/byte
// counters.
func renderMetrics(models map[string]Snapshot, stats *telemetry.Stats) string {
	var b strings.Builder
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := models[name]
		outcomes := make([]string, 0, len(s.Requests))
		for o := range s.Requests {
			outcomes = append(outcomes, o)
		}
		sort.Strings(outcomes)
		for _, o := range outcomes {
			fmt.Fprintf(&b, "serving_requests_total{model=%q,outcome=%q} %d\n", name, o, s.Requests[o])
		}
		fmt.Fprintf(&b, "serving_request_latency_ms{model=%q,quantile=\"0.5\"} %.3f\n", name, s.LatencyP50)
		fmt.Fprintf(&b, "serving_request_latency_ms{model=%q,quantile=\"0.95\"} %.3f\n", name, s.LatencyP95)
		fmt.Fprintf(&b, "serving_request_latency_ms{model=%q,quantile=\"0.99\"} %.3f\n", name, s.LatencyP99)
		sizes := make([]int, 0, len(s.BatchSizes))
		for size := range s.BatchSizes {
			sizes = append(sizes, size)
		}
		sort.Ints(sizes)
		for _, size := range sizes {
			fmt.Fprintf(&b, "serving_batch_size_total{model=%q,size=\"%d\"} %d\n", name, size, s.BatchSizes[size])
		}
		fmt.Fprintf(&b, "serving_queue_depth{model=%q} %d\n", name, s.QueueDepth)
		fmt.Fprintf(&b, "serving_queue_rejected_total{model=%q} %d\n", name, s.QueueRejected)
		routeLabels := make([]string, 0, len(s.Routes))
		for route := range s.Routes {
			routeLabels = append(routeLabels, route)
		}
		sort.Strings(routeLabels)
		for _, route := range routeLabels {
			fmt.Fprintf(&b, "serving_route_total{model=%q,route=%q} %d\n", name, route, s.Routes[route])
		}
		for _, rs := range s.Replicas {
			fmt.Fprintf(&b, "serving_replica_inflight{model=%q,replica=\"%d\"} %d\n", name, rs.ID, rs.Inflight)
			fmt.Fprintf(&b, "serving_replica_batches_total{model=%q,replica=\"%d\"} %d\n", name, rs.ID, rs.Batches)
			fmt.Fprintf(&b, "serving_replica_busy_ms_total{model=%q,replica=\"%d\"} %.3f\n", name, rs.ID, rs.BusyMS)
		}
		for _, ts := range s.Tenants {
			fmt.Fprintf(&b, "serving_tenant_inflight{model=%q,tenant=%q} %d\n", name, ts.Tenant, ts.Inflight)
			fmt.Fprintf(&b, "serving_tenant_shed_total{model=%q,tenant=%q} %d\n", name, ts.Tenant, ts.Shed)
		}
		stages := make([]string, 0, len(s.Stages))
		for stage := range s.Stages {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			sl := s.Stages[stage]
			fmt.Fprintf(&b, "serving_stage_latency_ms{model=%q,stage=%q,quantile=\"0.5\"} %.3f\n", name, stage, sl.P50)
			fmt.Fprintf(&b, "serving_stage_latency_ms{model=%q,stage=%q,quantile=\"0.95\"} %.3f\n", name, stage, sl.P95)
			fmt.Fprintf(&b, "serving_stage_latency_ms{model=%q,stage=%q,quantile=\"0.99\"} %.3f\n", name, stage, sl.P99)
		}
	}
	if stats != nil {
		renderKernelMetrics(&b, stats)
	}
	mem := core.Global().Memory()
	fmt.Fprintf(&b, "engine_num_tensors %d\n", mem.NumTensors)
	fmt.Fprintf(&b, "engine_num_data_buffers %d\n", mem.NumDataBuffers)
	fmt.Fprintf(&b, "engine_num_bytes %d\n", mem.NumBytes)
	fmt.Fprintf(&b, "engine_peak_bytes %d\n", mem.PeakBytes)
	return b.String()
}

// renderKernelMetrics emits the per-model per-kernel series sourced from
// the telemetry aggregator — the same numbers tfjs-profile prints, so the
// two surfaces agree by construction.
func renderKernelMetrics(b *strings.Builder, stats *telemetry.Stats) {
	for _, span := range stats.Spans() {
		model := modelOfSpan(span)
		for _, ks := range stats.KernelsForSpan(span) {
			fmt.Fprintf(b, "serving_kernel_invocations_total{model=%q,kernel=%q} %d\n", model, ks.Name, ks.Count)
			fmt.Fprintf(b, "serving_kernel_time_ms_total{model=%q,kernel=%q} %.3f\n", model, ks.Name, ks.TotalMS)
			fmt.Fprintf(b, "serving_kernel_time_ms{model=%q,kernel=%q,quantile=\"0.5\"} %.3f\n", model, ks.Name, ks.P50MS)
			fmt.Fprintf(b, "serving_kernel_time_ms{model=%q,kernel=%q,quantile=\"0.95\"} %.3f\n", model, ks.Name, ks.P95MS)
			fmt.Fprintf(b, "serving_kernel_bytes_added_total{model=%q,kernel=%q} %d\n", model, ks.Name, ks.BytesAdded)
		}
	}
	tr := stats.Transfers()
	fmt.Fprintf(b, "telemetry_upload_bytes_total %d\n", tr.UploadBytes)
	fmt.Fprintf(b, "telemetry_download_bytes_total %d\n", tr.DownloadBytes)
	fmt.Fprintf(b, "telemetry_page_out_bytes_total %d\n", tr.PageOutBytes)
	fmt.Fprintf(b, "telemetry_page_in_bytes_total %d\n", tr.PageInBytes)
	fmt.Fprintf(b, "telemetry_fence_total %d\n", tr.FenceCount)
}
