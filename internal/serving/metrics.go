package serving

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// latencySamples bounds the sliding window used for percentile estimates.
const latencySamples = 4096

// Metrics collects one model's serving statistics: request counts by
// outcome, a sliding-window latency distribution, and the batch-size
// histogram that demonstrates (or falsifies) micro-batching.
type Metrics struct {
	mu sync.Mutex

	requests map[string]int64 // outcome → count ("ok", "queue_full", ...)

	// latencyMS is a ring of recent end-to-end request latencies.
	latencyMS []float64
	latencyAt int

	// batchSizes histograms executed batch sizes (size → executions).
	batchSizes map[int]int64
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   map[string]int64{},
		batchSizes: map[int]int64{},
	}
}

// ObserveRequest records one finished request: its outcome label and, for
// successful requests, the end-to-end latency in milliseconds.
func (m *Metrics) ObserveRequest(outcome string, latencyMS float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[outcome]++
	if outcome != "ok" {
		return
	}
	if len(m.latencyMS) < latencySamples {
		m.latencyMS = append(m.latencyMS, latencyMS)
	} else {
		m.latencyMS[m.latencyAt] = latencyMS
		m.latencyAt = (m.latencyAt + 1) % latencySamples
	}
}

// ObserveBatch records one executed batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSizes[size]++
}

// Requests returns the count for one outcome label.
func (m *Metrics) Requests(outcome string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[outcome]
}

// MaxBatchObserved returns the largest executed batch size.
func (m *Metrics) MaxBatchObserved() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := 0
	for size := range m.batchSizes {
		if size > max {
			max = size
		}
	}
	return max
}

// Percentiles returns the p50/p95/p99 of the recent latency window, in
// milliseconds. Zeroes when no requests completed yet.
func (m *Metrics) Percentiles() (p50, p95, p99 float64) {
	m.mu.Lock()
	samples := make([]float64, len(m.latencyMS))
	copy(samples, m.latencyMS)
	m.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(samples)
	at := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

// Snapshot is one model's metrics in exportable form.
type Snapshot struct {
	Requests   map[string]int64 `json:"requests"`
	LatencyP50 float64          `json:"latency_ms_p50"`
	LatencyP95 float64          `json:"latency_ms_p95"`
	LatencyP99 float64          `json:"latency_ms_p99"`
	BatchSizes map[int]int64    `json:"batch_sizes"`
	QueueDepth int              `json:"queue_depth"`
}

// snapshot captures the current state; queueDepth is sampled by the caller.
func (m *Metrics) snapshot(queueDepth int) Snapshot {
	p50, p95, p99 := m.Percentiles()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Requests:   make(map[string]int64, len(m.requests)),
		LatencyP50: p50, LatencyP95: p95, LatencyP99: p99,
		BatchSizes: make(map[int]int64, len(m.batchSizes)),
		QueueDepth: queueDepth,
	}
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	for k, v := range m.batchSizes {
		s.BatchSizes[k] = v
	}
	return s
}

// renderMetrics emits the Prometheus-style text exposition for every
// model plus the engine's tensor/byte counters.
func renderMetrics(models map[string]Snapshot) string {
	var b strings.Builder
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := models[name]
		outcomes := make([]string, 0, len(s.Requests))
		for o := range s.Requests {
			outcomes = append(outcomes, o)
		}
		sort.Strings(outcomes)
		for _, o := range outcomes {
			fmt.Fprintf(&b, "serving_requests_total{model=%q,outcome=%q} %d\n", name, o, s.Requests[o])
		}
		fmt.Fprintf(&b, "serving_request_latency_ms{model=%q,quantile=\"0.5\"} %.3f\n", name, s.LatencyP50)
		fmt.Fprintf(&b, "serving_request_latency_ms{model=%q,quantile=\"0.95\"} %.3f\n", name, s.LatencyP95)
		fmt.Fprintf(&b, "serving_request_latency_ms{model=%q,quantile=\"0.99\"} %.3f\n", name, s.LatencyP99)
		sizes := make([]int, 0, len(s.BatchSizes))
		for size := range s.BatchSizes {
			sizes = append(sizes, size)
		}
		sort.Ints(sizes)
		for _, size := range sizes {
			fmt.Fprintf(&b, "serving_batch_size_total{model=%q,size=\"%d\"} %d\n", name, size, s.BatchSizes[size])
		}
		fmt.Fprintf(&b, "serving_queue_depth{model=%q} %d\n", name, s.QueueDepth)
	}
	mem := core.Global().Memory()
	fmt.Fprintf(&b, "engine_num_tensors %d\n", mem.NumTensors)
	fmt.Fprintf(&b, "engine_num_data_buffers %d\n", mem.NumDataBuffers)
	fmt.Fprintf(&b, "engine_num_bytes %d\n", mem.NumBytes)
	fmt.Fprintf(&b, "engine_peak_bytes %d\n", mem.PeakBytes)
	return b.String()
}
