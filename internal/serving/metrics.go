package serving

import (
	"math"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Metrics collects one model's serving statistics: request counts by
// outcome, a sliding-window latency distribution (the telemetry
// Distribution primitive, the same estimator backing per-kernel p50/p95),
// and the batch-size histogram that demonstrates (or falsifies)
// micro-batching.
type Metrics struct {
	mu sync.Mutex

	requests map[string]int64 // outcome → count ("ok", "queue_full", ...)

	// latency is the sliding window of end-to-end request latencies (ms).
	latency *telemetry.Distribution

	// batchSizes histograms executed batch sizes (size → executions).
	batchSizes map[int]int64

	// rejected counts submissions refused at the queue (ErrQueueFull) —
	// the backpressure signal operators alert on.
	rejected int64

	// stages holds per-stage latency distributions: queue_wait, gather,
	// execute, split — the request-flow breakdown behind the end-to-end
	// latency number.
	stages map[string]*telemetry.Distribution

	// routes counts routing decisions by label (stable, canary, shadow,
	// pinned) — the observability behind a rollout's traffic split.
	routes map[string]int64
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   map[string]int64{},
		latency:    telemetry.NewDistribution(),
		batchSizes: map[int]int64{},
		stages:     map[string]*telemetry.Distribution{},
		routes:     map[string]int64{},
	}
}

// ObserveRoute counts one routing decision (stable, canary, shadow,
// pinned).
func (m *Metrics) ObserveRoute(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[route]++
}

// Routes returns the count for one routing label.
func (m *Metrics) Routes(route string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routes[route]
}

// ObserveRequest records one finished request: its outcome label and, for
// successful requests, the end-to-end latency in milliseconds.
func (m *Metrics) ObserveRequest(outcome string, latencyMS float64) {
	m.mu.Lock()
	m.requests[outcome]++
	m.mu.Unlock()
	if outcome == "ok" {
		m.latency.Observe(latencyMS)
	}
}

// ObserveBatch records one executed batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSizes[size]++
}

// ObserveRejected counts one queue-full rejection.
func (m *Metrics) ObserveRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// Rejected returns the queue-full rejection count.
func (m *Metrics) Rejected() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected
}

// ObserveStage records one request's latency through a named serving
// stage (queue_wait, gather, execute, split).
func (m *Metrics) ObserveStage(stage string, ms float64) {
	m.mu.Lock()
	d, ok := m.stages[stage]
	if !ok {
		d = telemetry.NewDistribution()
		m.stages[stage] = d
	}
	m.mu.Unlock()
	d.Observe(ms)
}

// StagePercentiles returns the p50/p95/p99 of one stage's recent latency
// window. Zeroes when the stage has not been observed.
func (m *Metrics) StagePercentiles(stage string) (p50, p95, p99 float64) {
	m.mu.Lock()
	d := m.stages[stage]
	m.mu.Unlock()
	if d == nil {
		return 0, 0, 0
	}
	qs := d.Quantiles(0.50, 0.95, 0.99)
	return qs[0], qs[1], qs[2]
}

// Requests returns the count for one outcome label.
func (m *Metrics) Requests(outcome string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[outcome]
}

// MaxBatchObserved returns the largest executed batch size.
func (m *Metrics) MaxBatchObserved() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := 0
	for size := range m.batchSizes {
		if size > max {
			max = size
		}
	}
	return max
}

// Percentiles returns the p50/p95/p99 of the recent latency window, in
// milliseconds. Zeroes when no requests completed yet.
func (m *Metrics) Percentiles() (p50, p95, p99 float64) {
	qs := m.latency.Quantiles(0.50, 0.95, 0.99)
	return qs[0], qs[1], qs[2]
}

// StageLatency is one serving stage's quantile summary.
type StageLatency struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

// Snapshot is one model's metrics in exportable form.
type Snapshot struct {
	Requests      map[string]int64        `json:"requests"`
	LatencyP50    float64                 `json:"latency_ms_p50"`
	LatencyP95    float64                 `json:"latency_ms_p95"`
	LatencyP99    float64                 `json:"latency_ms_p99"`
	BatchSizes    map[int]int64           `json:"batch_sizes"`
	QueueDepth    int                     `json:"queue_depth"`
	QueueRejected int64                   `json:"queue_rejected"`
	Stages        map[string]StageLatency `json:"stages,omitempty"`
	Routes        map[string]int64        `json:"routes,omitempty"`
	Replicas      []ReplicaSnapshot       `json:"replicas,omitempty"`
	Tenants       []TenantSnapshot        `json:"tenants,omitempty"`
}

// snapshot captures the current state; queueDepth is sampled by the caller.
func (m *Metrics) snapshot(queueDepth int) Snapshot {
	p50, p95, p99 := m.Percentiles()
	m.mu.Lock()
	stages := make(map[string]*telemetry.Distribution, len(m.stages))
	for k, d := range m.stages {
		stages[k] = d
	}
	s := Snapshot{
		Requests:   make(map[string]int64, len(m.requests)),
		LatencyP50: p50, LatencyP95: p95, LatencyP99: p99,
		BatchSizes:    make(map[int]int64, len(m.batchSizes)),
		QueueDepth:    queueDepth,
		QueueRejected: m.rejected,
		Stages:        make(map[string]StageLatency, len(m.stages)),
	}
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	for k, v := range m.batchSizes {
		s.BatchSizes[k] = v
	}
	if len(m.routes) > 0 {
		s.Routes = make(map[string]int64, len(m.routes))
		for k, v := range m.routes {
			s.Routes[k] = v
		}
	}
	m.mu.Unlock()
	for k, d := range stages {
		qs := d.Quantiles(0.50, 0.95, 0.99)
		s.Stages[k] = StageLatency{P50: qs[0], P95: qs[1], P99: qs[2]}
	}
	return s
}

// modelOfSpan extracts the model label from a telemetry span name; spans
// are named "<model>:<signature>" by the registry.
func modelOfSpan(span string) string {
	if i := strings.Index(span, ":"); i >= 0 {
		return span[:i]
	}
	return span
}

// renderMetrics emits the Prometheus-style text exposition: per-model
// request/latency/batch series, per-model per-kernel breakdowns from the
// telemetry aggregator (nil skips them), and the engine's tensor/byte
// counters. Kept as the legacy-format entry point; the HTTP handler
// builds the richer exposition (profiler + trace series) itself.
func renderMetrics(models map[string]Snapshot, stats *telemetry.Stats) string {
	return buildExposition(models, stats, nil, nil).RenderLegacy()
}

// buildExposition assembles the full metrics sample set. The sample
// insertion order here IS the legacy wire format (RenderLegacy replays it
// line by line), so samples must keep their historical order; the
// OpenMetrics renderer regroups them by family on its own. prof and trace
// are optional: nil skips the profiler cost accounts and the trace-ring
// drop counters.
func buildExposition(models map[string]Snapshot, stats *telemetry.Stats, prof *telemetry.Profiler, trace *telemetry.Recorder) *telemetry.Exposition {
	e := telemetry.NewExposition()
	e.Family("serving_requests_total", telemetry.TypeCounter, "Finished requests by model and outcome.")
	e.Family("serving_request_latency_ms", telemetry.TypeGauge, "End-to-end request latency quantiles over the recent window (ms).")
	e.Family("serving_batch_size_total", telemetry.TypeCounter, "Executed batches by batch size.")
	e.Family("serving_queue_depth", telemetry.TypeGauge, "Requests waiting in the batching queue.")
	e.Family("serving_queue_rejected_total", telemetry.TypeCounter, "Submissions refused because the queue was full.")
	e.Family("serving_route_total", telemetry.TypeCounter, "Routing decisions by label (stable, canary, shadow, pinned).")
	e.Family("serving_replica_inflight", telemetry.TypeGauge, "Batches currently executing per replica.")
	e.Family("serving_replica_batches_total", telemetry.TypeCounter, "Batches executed per replica.")
	e.Family("serving_replica_busy_ms_total", telemetry.TypeCounter, "Cumulative busy time per replica (ms).")
	e.Family("serving_replica_pool_free_buffers", telemetry.TypeGauge, "Buffers parked on the replica backend's recycler free lists.")
	e.Family("serving_replica_pool_bytes", telemetry.TypeGauge, "Bytes parked on the replica backend's recycler free lists.")
	e.Family("serving_replica_pool_hits_total", telemetry.TypeCounter, "Allocations served from the replica's recycler free lists.")
	e.Family("serving_replica_pool_misses_total", telemetry.TypeCounter, "Allocations that fell through the replica's recycler to the heap.")
	e.Family("serving_replica_pool_recycled_bytes_total", telemetry.TypeCounter, "Bytes of heap allocation avoided by the replica's recycler.")
	e.Family("serving_tenant_inflight", telemetry.TypeGauge, "Requests currently admitted per tenant.")
	e.Family("serving_tenant_shed_total", telemetry.TypeCounter, "Requests shed by tenant admission control.")
	e.Family("serving_stage_latency_ms", telemetry.TypeGauge, "Per-stage latency quantiles over the recent window (ms).")
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := models[name]
		model := telemetry.L("model", name)
		outcomes := make([]string, 0, len(s.Requests))
		for o := range s.Requests {
			outcomes = append(outcomes, o)
		}
		sort.Strings(outcomes)
		for _, o := range outcomes {
			e.Int("serving_requests_total", s.Requests[o], model, telemetry.L("outcome", o))
		}
		e.Float("serving_request_latency_ms", s.LatencyP50, model, telemetry.L("quantile", "0.5"))
		e.Float("serving_request_latency_ms", s.LatencyP95, model, telemetry.L("quantile", "0.95"))
		e.Float("serving_request_latency_ms", s.LatencyP99, model, telemetry.L("quantile", "0.99"))
		sizes := make([]int, 0, len(s.BatchSizes))
		for size := range s.BatchSizes {
			sizes = append(sizes, size)
		}
		sort.Ints(sizes)
		for _, size := range sizes {
			e.Int("serving_batch_size_total", s.BatchSizes[size], model, telemetry.L("size", strconv.Itoa(size)))
		}
		e.Int("serving_queue_depth", int64(s.QueueDepth), model)
		e.Int("serving_queue_rejected_total", s.QueueRejected, model)
		routeLabels := make([]string, 0, len(s.Routes))
		for route := range s.Routes {
			routeLabels = append(routeLabels, route)
		}
		sort.Strings(routeLabels)
		for _, route := range routeLabels {
			e.Int("serving_route_total", s.Routes[route], model, telemetry.L("route", route))
		}
		for _, rs := range s.Replicas {
			replica := telemetry.L("replica", strconv.Itoa(rs.ID))
			e.Int("serving_replica_inflight", int64(rs.Inflight), model, replica)
			e.Int("serving_replica_batches_total", rs.Batches, model, replica)
			e.Float("serving_replica_busy_ms_total", rs.BusyMS, model, replica)
			e.Int("serving_replica_pool_free_buffers", int64(rs.PoolFreeBuffers), model, replica)
			e.Int("serving_replica_pool_bytes", rs.PoolBytes, model, replica)
			e.Int("serving_replica_pool_hits_total", rs.PoolHits, model, replica)
			e.Int("serving_replica_pool_misses_total", rs.PoolMisses, model, replica)
			e.Int("serving_replica_pool_recycled_bytes_total", rs.PoolRecycledBytes, model, replica)
		}
		for _, ts := range s.Tenants {
			tenant := telemetry.L("tenant", ts.Tenant)
			e.Int("serving_tenant_inflight", int64(ts.Inflight), model, tenant)
			e.Int("serving_tenant_shed_total", ts.Shed, model, tenant)
		}
		stages := make([]string, 0, len(s.Stages))
		for stage := range s.Stages {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			sl := s.Stages[stage]
			stageL := telemetry.L("stage", stage)
			e.Float("serving_stage_latency_ms", sl.P50, model, stageL, telemetry.L("quantile", "0.5"))
			e.Float("serving_stage_latency_ms", sl.P95, model, stageL, telemetry.L("quantile", "0.95"))
			e.Float("serving_stage_latency_ms", sl.P99, model, stageL, telemetry.L("quantile", "0.99"))
		}
	}
	if stats != nil {
		addKernelSamples(e, stats)
	}
	e.Family("engine_num_tensors", telemetry.TypeGauge, "Live tensors on the global engine.")
	e.Family("engine_num_data_buffers", telemetry.TypeGauge, "Live backing buffers on the global engine.")
	e.Family("engine_num_bytes", telemetry.TypeGauge, "Bytes held by live buffers on the global engine.")
	e.Family("engine_peak_bytes", telemetry.TypeGauge, "High-water mark of engine memory (bytes).")
	e.Family("engine_pool_free_buffers", telemetry.TypeGauge, "Buffers parked on the global backend's recycler free lists.")
	e.Family("engine_pool_bytes", telemetry.TypeGauge, "Bytes parked on the global backend's recycler free lists.")
	e.Family("engine_pool_hits_total", telemetry.TypeCounter, "Allocations served from the global backend's recycler.")
	e.Family("engine_pool_misses_total", telemetry.TypeCounter, "Allocations that fell through the global backend's recycler to the heap.")
	e.Family("engine_pool_recycled_bytes_total", telemetry.TypeCounter, "Bytes of heap allocation avoided by the global backend's recycler.")
	mem := core.Global().Memory()
	e.Int("engine_num_tensors", int64(mem.NumTensors))
	e.Int("engine_num_data_buffers", int64(mem.NumDataBuffers))
	e.Int("engine_num_bytes", mem.NumBytes)
	e.Int("engine_peak_bytes", mem.PeakBytes)
	e.Int("engine_pool_free_buffers", int64(mem.Backend.FreeBuffers))
	e.Int("engine_pool_bytes", mem.Backend.PoolBytes)
	e.Int("engine_pool_hits_total", mem.Backend.PoolHits)
	e.Int("engine_pool_misses_total", mem.Backend.PoolMisses)
	e.Int("engine_pool_recycled_bytes_total", mem.Backend.RecycledBytes)
	addRuntimeSamples(e)
	if trace != nil {
		addTraceSamples(e, trace)
	}
	if prof != nil {
		addProfilerSamples(e, prof)
	}
	return e
}

// addRuntimeSamples appends the Go runtime's GC series — the operator-facing
// evidence for the buffer recycler: with pooling on, steady-state serving
// stops producing garbage, so GC pause quantiles and cycle counts flatten.
// Sourced from runtime/metrics (the supported successor to the deprecated
// GCStats surface).
func addRuntimeSamples(e *telemetry.Exposition) {
	e.Family("process_gc_pause_ms", telemetry.TypeGauge, "Stop-the-world GC pause quantiles over the process lifetime (ms).")
	e.Family("process_gc_cycles_total", telemetry.TypeCounter, "Completed GC cycles.")
	e.Family("process_heap_objects_bytes", telemetry.TypeGauge, "Bytes of live heap objects.")
	samples := []metrics.Sample{
		{Name: "/sched/pauses/total/gc:seconds"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	metrics.Read(samples)
	if h := samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
		for q, v := range gcPauseQuantiles(h.Float64Histogram(), 0.5, 0.95, 0.99) {
			// Milliseconds, matching every other *_ms series: the legacy
			// renderer prints %.3f, and GC pauses are sub-millisecond, so a
			// seconds-valued gauge would truncate to 0.000.
			e.Float("process_gc_pause_ms", v*1000, telemetry.L("quantile", []string{"0.5", "0.95", "0.99"}[q]))
		}
	}
	if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
		e.Int("process_gc_cycles_total", int64(v.Uint64()))
	}
	if v := samples[2].Value; v.Kind() == metrics.KindUint64 {
		e.Int("process_heap_objects_bytes", int64(v.Uint64()))
	}
}

// gcPauseQuantiles reads quantiles off a runtime/metrics histogram: the
// value below which the requested fraction of observations fall, taking
// each bucket's upper bound (pessimistic). Infinite bounds clamp to the
// nearest finite neighbor.
func gcPauseQuantiles(h *metrics.Float64Histogram, qs ...float64) []float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	out := make([]float64, len(qs))
	if total == 0 {
		return out
	}
	for i, q := range qs {
		target := uint64(q * float64(total))
		var cum uint64
		for b, c := range h.Counts {
			cum += c
			if cum > target {
				hi := h.Buckets[b+1]
				if math.IsInf(hi, 1) {
					hi = h.Buckets[b]
				}
				out[i] = hi
				break
			}
		}
	}
	return out
}

// addKernelSamples appends the per-model per-kernel series sourced from
// the telemetry aggregator — the same numbers tfjs-profile prints, so the
// two surfaces agree by construction.
func addKernelSamples(e *telemetry.Exposition, stats *telemetry.Stats) {
	e.Family("serving_kernel_invocations_total", telemetry.TypeCounter, "Kernel dispatches by model and kernel.")
	e.Family("serving_kernel_time_ms_total", telemetry.TypeCounter, "Cumulative kernel wall time by model and kernel (ms).")
	// The legacy gauge name collides with the counter family above once
	// OpenMetrics strips _total, so the OM rendering uses _window.
	e.FamilyOM("serving_kernel_time_ms", "serving_kernel_time_ms_window",
		telemetry.TypeGauge, "Kernel wall-time quantiles over the recent window (ms).")
	e.Family("serving_kernel_bytes_added_total", telemetry.TypeCounter, "Bytes of output allocated by kernel dispatches.")
	e.Family("telemetry_upload_bytes_total", telemetry.TypeCounter, "Bytes uploaded host-to-device.")
	e.Family("telemetry_download_bytes_total", telemetry.TypeCounter, "Bytes downloaded device-to-host.")
	e.Family("telemetry_page_out_bytes_total", telemetry.TypeCounter, "Bytes paged out of device memory.")
	e.Family("telemetry_page_in_bytes_total", telemetry.TypeCounter, "Bytes paged back into device memory.")
	e.Family("telemetry_fence_total", telemetry.TypeCounter, "Device fences awaited.")
	for _, span := range stats.Spans() {
		model := telemetry.L("model", modelOfSpan(span))
		for _, ks := range stats.KernelsForSpan(span) {
			kernel := telemetry.L("kernel", ks.Name)
			e.Int("serving_kernel_invocations_total", ks.Count, model, kernel)
			e.Float("serving_kernel_time_ms_total", ks.TotalMS, model, kernel)
			e.Float("serving_kernel_time_ms", ks.P50MS, model, kernel, telemetry.L("quantile", "0.5"))
			e.Float("serving_kernel_time_ms", ks.P95MS, model, kernel, telemetry.L("quantile", "0.95"))
			e.Int("serving_kernel_bytes_added_total", ks.BytesAdded, model, kernel)
		}
	}
	tr := stats.Transfers()
	e.Int("telemetry_upload_bytes_total", tr.UploadBytes)
	e.Int("telemetry_download_bytes_total", tr.DownloadBytes)
	e.Int("telemetry_page_out_bytes_total", tr.PageOutBytes)
	e.Int("telemetry_page_in_bytes_total", tr.PageInBytes)
	e.Int("telemetry_fence_total", tr.FenceCount)
}

// addTraceSamples appends the trace-ring overwrite counters: one series
// per shard plus nothing else — a nonzero value means downloaded traces
// are truncated to the most recent events.
func addTraceSamples(e *telemetry.Exposition, trace *telemetry.Recorder) {
	e.Family("telemetry_trace_dropped_events_total", telemetry.TypeCounter, "Trace events overwritten by ring wraparound, per shard.")
	for shard, n := range trace.DroppedByShard() {
		e.Int("telemetry_trace_dropped_events_total", n, telemetry.L("shard", strconv.Itoa(shard)))
	}
}

// addProfilerSamples appends the continuous profiler's own series: how
// many events it consumed, what its sampled self-overhead cost, and the
// per-kernel measured cost accounts (ns/element EWMA plus quantiles).
func addProfilerSamples(e *telemetry.Exposition, prof *telemetry.Profiler) {
	e.Family("telemetry_profiler_events_total", telemetry.TypeCounter, "Kernel events consumed by the continuous profiler.")
	e.Family("telemetry_profiler_overhead_samples_total", telemetry.TypeCounter, "Profiler self-overhead samples taken (1 in 64 events).")
	e.Family("telemetry_profiler_overhead_ns_total", telemetry.TypeCounter, "Sampled wall time spent inside the profiler's observe path (ns).")
	e.Family("telemetry_kernel_cost_ns_total", telemetry.TypeCounter, "Cumulative measured kernel time by kernel (ns).")
	e.Family("telemetry_kernel_cost_items_total", telemetry.TypeCounter, "Output elements processed by measured kernel dispatches.")
	e.Family("telemetry_kernel_cost_ns_per_element", telemetry.TypeGauge, "Measured kernel cost: ns per output element (EWMA, plus p50/p95 quantiles).")
	e.Int("telemetry_profiler_events_total", prof.Events())
	samples, overheadNS := prof.Overhead()
	e.Int("telemetry_profiler_overhead_samples_total", samples)
	e.Int("telemetry_profiler_overhead_ns_total", overheadNS)
	for _, cs := range prof.Snapshot() {
		kernel := telemetry.L("kernel", cs.Kernel)
		e.Int("telemetry_kernel_cost_ns_total", cs.TotalNS, kernel)
		e.Int("telemetry_kernel_cost_items_total", cs.Items, kernel)
		e.Float("telemetry_kernel_cost_ns_per_element", cs.NSPerItem, kernel)
		e.Float("telemetry_kernel_cost_ns_per_element", cs.P50, kernel, telemetry.L("quantile", "0.5"))
		e.Float("telemetry_kernel_cost_ns_per_element", cs.P95, kernel, telemetry.L("quantile", "0.95"))
	}
}
