package serving

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// observabilityServer spins up a server with one stub model that has seen
// a little traffic, so /metrics has serving series to expose.
func observabilityServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	t.Cleanup(reg.Close)
	m := stubModel("mobilenet", Config{MaxBatchSize: 4, BatchTimeout: time.Millisecond, QueueSize: 16}, runnerFunc(echoRunner))
	reg.install(m)
	api := NewServer(reg)
	t.Cleanup(api.Close)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	m.metrics.ObserveRequest("ok", 1.5)
	m.metrics.ObserveRequest("ok", 2.5)
	m.metrics.ObserveRequest("error", 0.5)
	// Warm the kernel-stats aggregator so /metrics renders the per-kernel
	// series — including serving_kernel_time_ms, whose quantile gauge
	// collides with its cumulative counter under OM _total stripping.
	for i := 0; i < 3; i++ {
		api.Stats().Observe(telemetry.Event{
			Kind: telemetry.KindKernel, Name: "MatMul",
			Span: "mobilenet:predict", DurMS: 1.25, Bytes: 4096,
		})
	}
	return api, srv
}

// get performs a GET with optional extra headers and returns the response
// plus its body.
func get(t *testing.T, url string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// TestMetricsContentNegotiation checks both /metrics wire formats: the
// historical flat text stays the default (no metadata lines, text/plain),
// and an OpenMetrics Accept header switches to the OM content type with
// output the strict parser accepts — including the profiler and trace-ring
// self-observability series.
func TestMetricsContentNegotiation(t *testing.T) {
	_, srv := observabilityServer(t)

	resp, legacyBody := get(t, srv.URL+"/metrics", nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default /metrics content type = %q", ct)
	}
	if strings.Contains(legacyBody, "# TYPE") || strings.Contains(legacyBody, "# EOF") {
		t.Errorf("default /metrics leaked OpenMetrics metadata:\n%.500s", legacyBody)
	}
	if !strings.Contains(legacyBody, `serving_requests_total{model="mobilenet",outcome="ok"} 2`) {
		t.Errorf("default /metrics missing legacy request counter:\n%.500s", legacyBody)
	}

	resp, body := get(t, srv.URL+"/metrics", map[string]string{
		"Accept": "application/openmetrics-text; version=1.0.0; charset=utf-8",
	})
	if ct := resp.Header.Get("Content-Type"); ct != openMetricsContentType {
		t.Errorf("OM /metrics content type = %q, want %q", ct, openMetricsContentType)
	}
	p, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("OM /metrics rejected by strict parser: %v\n%.1000s", err, body)
	}
	if v, ok := p.Value("serving_requests_total", map[string]string{"model": "mobilenet", "outcome": "ok"}); !ok || v != 2 {
		t.Errorf("OM serving_requests_total = %v, %v", v, ok)
	}
	if fam := p.Family("serving_requests"); fam == nil || fam.Type != telemetry.TypeCounter {
		t.Errorf("serving_requests family missing or untyped: %+v", fam)
	}
	// The profiler's self-observability series and the per-shard trace-ring
	// overwrite counters must be present even when zero — absence and zero
	// are different signals to a dashboard.
	if _, ok := p.Value("telemetry_profiler_events_total", nil); !ok {
		t.Error("OM /metrics missing telemetry_profiler_events_total")
	}
	// The kernel-time quantile gauge keeps its legacy name in the flat
	// format but renders as _window in OM, where the bare name would
	// collide with the serving_kernel_time_ms counter family.
	if !strings.Contains(legacyBody, `serving_kernel_time_ms{model="mobilenet",kernel="MatMul",quantile="0.5"}`) {
		t.Errorf("default /metrics lost the legacy kernel-time gauge name:\n%.1500s", legacyBody)
	}
	if v, ok := p.Value("serving_kernel_time_ms_window", map[string]string{"kernel": "MatMul", "quantile": "0.5"}); !ok || v <= 0 {
		t.Errorf("OM serving_kernel_time_ms_window = %v, %v", v, ok)
	}
	if fam := p.Family("serving_kernel_time_ms"); fam == nil || fam.Type != telemetry.TypeCounter {
		t.Errorf("serving_kernel_time_ms counter family missing or untyped: %+v", fam)
	}
	if shards := p.Samples("telemetry_trace_dropped_events_total"); len(shards) == 0 {
		t.Error("OM /metrics missing per-shard telemetry_trace_dropped_events_total")
	} else {
		for _, s := range shards {
			if s.Label("shard") == "" {
				t.Errorf("trace drop sample without shard label: %+v", s)
			}
		}
	}
}

// TestMetricsProfilerSeries feeds kernel events through the server's
// profiler and checks the per-kernel measured-cost series appear on the
// OpenMetrics exposition with their quantile variants.
func TestMetricsProfilerSeries(t *testing.T) {
	api, srv := observabilityServer(t)
	for i := 0; i < 10; i++ {
		api.Profiler().Observe(telemetry.Event{
			Kind: telemetry.KindKernel, Name: "fused_MatMul", DurMS: 2, Elements: 1 << 16,
		})
	}
	_, body := get(t, srv.URL+"/metrics", map[string]string{"Accept": "application/openmetrics-text"})
	p, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := map[string]string{"kernel": "fused_MatMul"}
	if v, ok := p.Value("telemetry_kernel_cost_ns_total", want); !ok || v <= 0 {
		t.Errorf("telemetry_kernel_cost_ns_total = %v, %v", v, ok)
	}
	if v, ok := p.Value("telemetry_kernel_cost_items_total", want); !ok || v != 10*(1<<16) {
		t.Errorf("telemetry_kernel_cost_items_total = %v, %v", v, ok)
	}
	for _, q := range []string{"", "0.5", "0.95"} {
		labels := map[string]string{"kernel": "fused_MatMul"}
		if q != "" {
			labels["quantile"] = q
		}
		if v, ok := p.Value("telemetry_kernel_cost_ns_per_element", labels); !ok || v <= 0 {
			t.Errorf("ns_per_element quantile=%q = %v, %v", q, v, ok)
		}
	}
	if v, ok := p.Value("telemetry_profiler_events_total", nil); !ok || v != 10 {
		t.Errorf("telemetry_profiler_events_total = %v, %v", v, ok)
	}
}

// TestDebugTraceParamValidation pins the ?seconds contract: non-numeric
// and non-positive values are client errors, valid and absent values echo
// the applied window on X-Trace-Seconds, and the overwrite count always
// rides on X-Trace-Dropped-Events.
func TestDebugTraceParamValidation(t *testing.T) {
	_, srv := observabilityServer(t)

	for _, bad := range []string{"0", "-1", "-0.5", "abc", "1e", "NaN", "-Inf"} {
		resp, body := get(t, srv.URL+"/debug/trace?seconds="+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("seconds=%s: status %d, want 400 (%s)", bad, resp.StatusCode, strings.TrimSpace(body))
		}
	}

	resp, _ := get(t, srv.URL+"/debug/trace?seconds=2.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seconds=2.5: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Seconds"); got != "2.5" {
		t.Errorf("X-Trace-Seconds = %q, want 2.5", got)
	}
	if got := resp.Header.Get("X-Trace-Dropped-Events"); got != "0" {
		t.Errorf("X-Trace-Dropped-Events = %q, want 0", got)
	}

	resp, _ = get(t, srv.URL+"/debug/trace", nil)
	if got := resp.Header.Get("X-Trace-Seconds"); got != "all" {
		t.Errorf("absent seconds: X-Trace-Seconds = %q, want all", got)
	}
}

// TestDebugMemoryParamValidation pins the ?leaks contract: bad values are
// 400s, and the applied (possibly capped) capture window is echoed on
// X-Leak-Capture-Seconds.
func TestDebugMemoryParamValidation(t *testing.T) {
	_, srv := observabilityServer(t)

	for _, bad := range []string{"0", "-2", "nope"} {
		resp, body := get(t, srv.URL+"/debug/memory?leaks="+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("leaks=%s: status %d, want 400 (%s)", bad, resp.StatusCode, strings.TrimSpace(body))
		}
	}

	resp, _ := get(t, srv.URL+"/debug/memory?leaks=0.05", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leaks=0.05: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Leak-Capture-Seconds"); got != "0.05" {
		t.Errorf("X-Leak-Capture-Seconds = %q, want 0.05", got)
	}
}
