package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/converter"
	"repro/internal/core"
	"repro/internal/graphmodel"
)

// State is a model's lifecycle phase.
type State int

// Lifecycle states: Load is asynchronous, so a model is visible (and
// reports 503) while loading; Unload stops the scheduler and frees
// weights.
const (
	StateLoading State = iota
	StateReady
	StateFailed
	StateUnloaded
)

// String renders the state for status endpoints.
func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	case StateUnloaded:
		return "unloaded"
	}
	return "unknown"
}

// ModelOptions configures one registry entry.
type ModelOptions struct {
	// Backend names the engine backend this model executes on ("cpu",
	// "webgl", "node", ...). Empty means "node", the native server-side
	// backend (§4.2).
	Backend string
	// Batching tunes the scheduler and micro-batcher.
	Batching Config
	// DisableOptimize loads graph models with the load-time graph
	// optimizer off (graphmodel.WithOptimize(false)): no operator fusion,
	// no folding, no compiled-plan rewrites beyond attr decoding. The A/B
	// switch for fusion benchmarks.
	DisableOptimize bool
	// DisableVerify loads graph models with the load-time static
	// shape/dtype verifier off (graphmodel.WithVerify(false)):
	// inconsistent models surface errors at the first request instead of
	// being rejected at Load with a node-and-edge diagnostic.
	DisableVerify bool
}

// Model is one served model: scheduler, metrics and lifecycle state.
type Model struct {
	name       string
	backend    string
	noOptimize bool
	noVerify   bool
	cfg        Config
	metrics    *Metrics

	mu      sync.Mutex
	state   State
	loadErr error
	format  string
	sched   *scheduler
	disp    func()

	ready chan struct{} // closed when loading finishes either way
}

// Name returns the registry name.
func (m *Model) Name() string { return m.name }

// Backend returns the backend this model executes on.
func (m *Model) Backend() string { return m.backend }

// Metrics returns the model's metrics collector.
func (m *Model) Metrics() *Metrics { return m.metrics }

// State returns the current lifecycle state.
func (m *Model) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Ready reports whether the model accepts predictions.
func (m *Model) Ready() bool { return m.State() == StateReady }

// WaitReady blocks until loading finishes or ctx expires, then reports
// the load error if any.
func (m *Model) WaitReady(ctx context.Context) error {
	select {
	case <-m.ready:
	case <-ctx.Done():
		return ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateReady {
		if m.loadErr != nil {
			return m.loadErr
		}
		return ErrNotReady
	}
	return nil
}

// QueueDepth samples the pending-request queue.
func (m *Model) QueueDepth() int {
	m.mu.Lock()
	sched := m.sched
	m.mu.Unlock()
	if sched == nil {
		return 0
	}
	return sched.QueueDepth()
}

// Status is the JSON shape of GET /v1/models/{name} (KServe V1 readiness
// plus diagnostics).
type Status struct {
	Name    string `json:"name"`
	Ready   bool   `json:"ready"`
	State   string `json:"state"`
	Backend string `json:"backend"`
	Format  string `json:"format,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Status snapshots the model's lifecycle for the status endpoint.
func (m *Model) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Name:    m.name,
		Ready:   m.state == StateReady,
		State:   m.state.String(),
		Backend: m.backend,
		Format:  m.format,
	}
	if m.loadErr != nil {
		s.Error = m.loadErr.Error()
	}
	return s
}

// Predict runs one example through the scheduler and records metrics.
func (m *Model) Predict(ctx context.Context, inst Instance) (Instance, error) {
	start := time.Now()
	m.mu.Lock()
	state := m.state
	sched := m.sched
	m.mu.Unlock()
	if state != StateReady || sched == nil {
		m.metrics.ObserveRequest("not_ready", 0)
		return Instance{}, ErrNotReady
	}
	out, err := sched.Submit(ctx, inst)
	m.metrics.ObserveRequest(outcomeLabel(err), float64(time.Since(start))/float64(time.Millisecond))
	return out, err
}

// outcomeLabel maps a Submit error to its metrics label.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case err == ErrQueueFull:
		return "queue_full"
	case err == context.DeadlineExceeded || err == context.Canceled:
		return "timeout"
	case err == ErrShuttingDown:
		return "shutdown"
	default:
		return "error"
	}
}

// load resolves the artifact format, builds the runner and flips state.
func (m *Model) load(store converter.Store) {
	run, format, dispose, err := loadRunner(m.name, store, m.backend, m.noOptimize, m.noVerify)
	m.mu.Lock()
	if m.state == StateUnloaded {
		// Unloaded while loading: discard.
		m.mu.Unlock()
		if dispose != nil {
			dispose()
		}
		close(m.ready)
		return
	}
	if err != nil {
		m.state = StateFailed
		m.loadErr = err
	} else {
		m.format = format
		m.sched = newScheduler(m.cfg, m.name, run, m.metrics)
		m.disp = dispose
		m.state = StateReady
	}
	m.mu.Unlock()
	close(m.ready)
}

// loadRunner reads model.json to pick the loader: graph models execute
// through graphmodel, layers models through the restored Sequential. The
// registry name becomes the model's telemetry span prefix, so traces and
// kernel breakdowns attribute per model.
func loadRunner(name string, store converter.Store, backend string, noOptimize, noVerify bool) (runner, string, func(), error) {
	data, err := store.Read("model.json")
	if err != nil {
		return nil, "", nil, fmt.Errorf("serving: reading model.json: %w", err)
	}
	var meta struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, "", nil, fmt.Errorf("serving: parsing model.json: %w", err)
	}
	switch meta.Format {
	case "graph-model":
		gm, err := graphmodel.Load(store, graphmodel.WithOptimize(!noOptimize), graphmodel.WithVerify(!noVerify))
		if err != nil {
			return nil, "", nil, err
		}
		gm.SetName(name)
		run, err := newGraphRunner(gm, backend)
		if err != nil {
			return nil, "", nil, err
		}
		dispose := func() { core.Global().RunExclusive(gm.Dispose) }
		return run, meta.Format, dispose, nil
	case "layers-model":
		lm, err := converter.LoadLayersModel(store)
		if err != nil {
			return nil, "", nil, err
		}
		dispose := func() { core.Global().RunExclusive(lm.Dispose) }
		return &layersRunner{model: lm, backend: backend, span: name + ":predict"}, meta.Format, dispose, nil
	default:
		return nil, "", nil, fmt.Errorf("serving: model.json format %q is neither graph-model nor layers-model", meta.Format)
	}
}

// unload stops the scheduler and frees the model's weights.
func (m *Model) unload() {
	m.mu.Lock()
	prev := m.state
	m.state = StateUnloaded
	sched := m.sched
	disp := m.disp
	m.sched = nil
	m.disp = nil
	m.mu.Unlock()
	if prev == StateUnloaded {
		return
	}
	if sched != nil {
		sched.Close()
	}
	if disp != nil {
		disp()
	}
}

// Registry holds the named models a server exposes. Multiple models may
// be loaded concurrently, each with its own backend and batching config.
type Registry struct {
	mu     sync.Mutex
	models map[string]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*Model{}}
}

// Load registers name and starts loading its artifacts asynchronously;
// the returned model reports StateLoading until done (WaitReady blocks).
func (r *Registry) Load(name string, store converter.Store, opts ModelOptions) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serving: empty model name")
	}
	backend := opts.Backend
	if backend == "" {
		backend = "node"
	}
	m := &Model{
		name:       name,
		backend:    backend,
		noOptimize: opts.DisableOptimize,
		noVerify:   opts.DisableVerify,
		cfg:        opts.Batching.withDefaults(),
		metrics:    NewMetrics(),
		state:      StateLoading,
		ready:      make(chan struct{}),
	}
	r.mu.Lock()
	if _, dup := r.models[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("serving: model %q already loaded", name)
	}
	r.models[name] = m
	r.mu.Unlock()
	go m.load(store)
	return m, nil
}

// Unload stops and removes a model.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	m, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	m.unload()
	return nil
}

// Get returns the named model.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[name]
	return m, ok
}

// Names lists loaded model names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshots collects per-model metrics for the /metrics endpoint.
func (r *Registry) Snapshots() map[string]Snapshot {
	r.mu.Lock()
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.mu.Unlock()
	out := make(map[string]Snapshot, len(models))
	for _, m := range models {
		out[m.name] = m.metrics.snapshot(m.QueueDepth())
	}
	return out
}

// Close unloads every model.
func (r *Registry) Close() {
	for _, name := range r.Names() {
		//lint:ignore operr best-effort shutdown; Unload fails only for unknown names, which Names() just enumerated
		_ = r.Unload(name)
	}
}
