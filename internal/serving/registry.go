package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/converter"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graphmodel"
)

// State is a model's lifecycle phase.
type State int

// Lifecycle states: Load is asynchronous, so a model is visible (and
// reports 503) while loading; Unload stops the scheduler and frees
// weights. Evicted versions look Unloaded until a request resurrects
// them.
const (
	StateLoading State = iota
	StateReady
	StateFailed
	StateUnloaded
)

// String renders the state for status endpoints.
func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	case StateUnloaded:
		return "unloaded"
	}
	return "unknown"
}

// ModelOptions configures one registry entry.
type ModelOptions struct {
	// Backend names the engine backend this model executes on ("cpu",
	// "webgl", "node", ...). Empty means "node", the native server-side
	// backend (§4.2).
	Backend string
	// Batching tunes the scheduler and micro-batcher.
	Batching Config
	// Replicas is the number of independent engine replicas serving this
	// model. Each replica is a full copy — its own engine, backend
	// instance and weight upload — so N replicas execute up to N batches
	// concurrently. 0 or 1 means a single engine (the global one), the
	// pre-replica behaviour. Only graph-format models replicate; layers
	// models are pinned to 1.
	Replicas int
	// Tenants enables per-tenant weighted-fair admission control: a map
	// of tenant ID → weight. Requests carry their tenant in the
	// X-Tenant-ID header (or WithTenant); unlisted tenants get weight 1,
	// anonymous requests share one bucket. A tenant over its share is
	// shed with 429 + Retry-After. Nil disables admission control
	// entirely (every request competes only at the bounded queue).
	Tenants map[string]int
	// Exec carries the execution configuration applied to this model's
	// load and to each replica's backend: worker budget, GEMM core,
	// quantized compute, and the optimize/verify gates. One option list,
	// the same surface as tf.LoadGraphModel and tf.ConfigureExec.
	Exec []exec.Option
	// DisableOptimize loads graph models with the load-time graph
	// optimizer off: no operator fusion, no folding, no compiled-plan
	// rewrites beyond attr decoding.
	//
	// Deprecated: use Exec with exec.WithOptimize(false). An explicit
	// Exec optimize setting overrides this field.
	DisableOptimize bool
	// DisableVerify loads graph models with the load-time static
	// shape/dtype verifier off: inconsistent models surface errors at the
	// first request instead of being rejected at Load.
	//
	// Deprecated: use Exec with exec.WithVerify(false). An explicit Exec
	// verify setting overrides this field.
	DisableVerify bool
}

// Model is one served model version: scheduler, metrics and lifecycle
// state.
type Model struct {
	name     string // display name, "base" or "base@version"
	backend  string
	exec     exec.Config
	replicas int
	cfg      Config
	metrics  *Metrics
	adm      *admission // nil when ModelOptions.Tenants is nil

	mu      sync.Mutex
	state   State
	loadErr error
	format  string
	sched   *scheduler
	disp    func()
	pool    *pool // non-nil when replicated

	ready chan struct{} // closed when loading finishes either way
}

// Name returns the registry name (including the @version suffix when the
// model was registered with one).
func (m *Model) Name() string { return m.name }

// Backend returns the backend this model executes on.
func (m *Model) Backend() string { return m.backend }

// Metrics returns the model's metrics collector.
func (m *Model) Metrics() *Metrics { return m.metrics }

// Replicas returns the configured replica count (1 when unreplicated).
func (m *Model) Replicas() int {
	if m.replicas > 1 {
		return m.replicas
	}
	return 1
}

// State returns the current lifecycle state.
func (m *Model) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Ready reports whether the model accepts predictions.
func (m *Model) Ready() bool { return m.State() == StateReady }

// WaitReady blocks until loading finishes or ctx expires, then reports
// the load error if any.
func (m *Model) WaitReady(ctx context.Context) error {
	select {
	case <-m.ready:
	case <-ctx.Done():
		return ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateReady {
		if m.loadErr != nil {
			return m.loadErr
		}
		return ErrNotReady
	}
	return nil
}

// QueueDepth samples the pending-request queue.
func (m *Model) QueueDepth() int {
	m.mu.Lock()
	sched := m.sched
	m.mu.Unlock()
	if sched == nil {
		return 0
	}
	return sched.QueueDepth()
}

// replicaSnapshots samples per-replica utilization (nil when
// unreplicated).
func (m *Model) replicaSnapshots() []ReplicaSnapshot {
	m.mu.Lock()
	p := m.pool
	m.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.snapshots()
}

// Status is the JSON shape of GET /v1/models/{name} (KServe V1 readiness
// plus diagnostics).
type Status struct {
	Name     string `json:"name"`
	Ready    bool   `json:"ready"`
	State    string `json:"state"`
	Backend  string `json:"backend"`
	Replicas int    `json:"replicas,omitempty"`
	Format   string `json:"format,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots the model's lifecycle for the status endpoint.
func (m *Model) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Name:    m.name,
		Ready:   m.state == StateReady,
		State:   m.state.String(),
		Backend: m.backend,
		Format:  m.format,
	}
	if m.replicas > 1 {
		s.Replicas = m.replicas
	}
	if m.loadErr != nil {
		s.Error = m.loadErr.Error()
	}
	return s
}

// Predict runs one example through admission control and the scheduler,
// recording metrics.
func (m *Model) Predict(ctx context.Context, inst Instance) (Instance, error) {
	start := time.Now()
	m.mu.Lock()
	state := m.state
	sched := m.sched
	m.mu.Unlock()
	if state != StateReady || sched == nil {
		m.metrics.ObserveRequest("not_ready", 0)
		return Instance{}, ErrNotReady
	}
	if m.adm != nil {
		tenant := TenantOf(ctx)
		release, ok := m.adm.tryAdmit(tenant)
		if !ok {
			m.metrics.ObserveRequest("shed", 0)
			return Instance{}, &ShedError{
				Reason:     "tenant_quota",
				Tenant:     tenant,
				RetryAfter: sched.retryAfter(),
			}
		}
		defer release()
	}
	out, err := sched.Submit(ctx, inst)
	m.metrics.ObserveRequest(outcomeLabel(err), float64(time.Since(start))/float64(time.Millisecond))
	return out, err
}

// outcomeLabel maps a Submit error to its metrics label.
func outcomeLabel(err error) string {
	var shed *ShedError
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.As(err, &shed):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	case errors.Is(err, ErrShuttingDown):
		return "shutdown"
	default:
		return "error"
	}
}

// load resolves the artifact format, builds the runner and flips state.
func (m *Model) load(store converter.Store) {
	run, format, dispose, err := loadRunner(m.name, store, m.backend, m.Replicas(), m.exec)
	m.mu.Lock()
	if m.state == StateUnloaded {
		// Unloaded while loading: discard.
		m.mu.Unlock()
		if dispose != nil {
			dispose()
		}
		close(m.ready)
		return
	}
	if err != nil {
		m.state = StateFailed
		m.loadErr = err
	} else {
		m.format = format
		m.sched = newScheduler(m.cfg, m.name, run, m.metrics)
		m.disp = dispose
		if p, ok := run.(*pool); ok {
			m.pool = p
		}
		m.state = StateReady
	}
	m.mu.Unlock()
	close(m.ready)
}

// loadRunner reads model.json to pick the loader: graph models execute
// through graphmodel (a replica pool when replicas > 1), layers models
// through the restored Sequential. The registry name becomes the model's
// telemetry span prefix, so traces and kernel breakdowns attribute per
// model.
func loadRunner(name string, store converter.Store, backend string, replicas int, ec exec.Config) (runner, string, func(), error) {
	data, err := store.Read("model.json")
	if err != nil {
		return nil, "", nil, fmt.Errorf("serving: reading model.json: %w", err)
	}
	var meta struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, "", nil, fmt.Errorf("serving: parsing model.json: %w", err)
	}
	switch meta.Format {
	case "graph-model":
		if replicas > 1 {
			p, err := newPool(name, store, backend, replicas, ec)
			if err != nil {
				return nil, "", nil, err
			}
			return p, meta.Format, p.Close, nil
		}
		gm, err := graphmodel.Load(store, graphmodel.WithExecConfig(ec))
		if err != nil {
			return nil, "", nil, err
		}
		gm.SetName(name)
		run, err := newGraphRunner(gm, backend)
		if err != nil {
			return nil, "", nil, err
		}
		dispose := func() { gm.Engine().RunExclusive(gm.Dispose) }
		return run, meta.Format, dispose, nil
	case "layers-model":
		lm, err := converter.LoadLayersModel(store)
		if err != nil {
			return nil, "", nil, err
		}
		dispose := func() { core.Global().RunExclusive(lm.Dispose) }
		return &layersRunner{model: lm, backend: backend, span: name + ":predict"}, meta.Format, dispose, nil
	default:
		return nil, "", nil, fmt.Errorf("serving: model.json format %q is neither graph-model nor layers-model", meta.Format)
	}
}

// unload stops the scheduler and frees the model's weights.
func (m *Model) unload() {
	m.mu.Lock()
	prev := m.state
	m.state = StateUnloaded
	sched := m.sched
	disp := m.disp
	m.sched = nil
	m.disp = nil
	m.pool = nil
	m.mu.Unlock()
	if prev == StateUnloaded {
		return
	}
	if sched != nil {
		sched.Close()
	}
	if disp != nil {
		disp()
	}
}

// ---------------------------------------------------------------------------
// Versioned registry

// parseModelName splits "base@version" into its parts; a bare name has
// version "".
func parseModelName(name string) (base, version string) {
	if i := strings.LastIndex(name, "@"); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// displayName re-joins a base and version into the registry name.
func displayName(base, version string) string {
	if version == "" {
		return base
	}
	return base + "@" + version
}

// entry is one version's slot in a group. The store and options are
// retained so an LRU-evicted version can be reloaded lazily on its next
// request (the converter store is the artifact source of truth; eviction
// frees the weights, not the artifacts).
type entry struct {
	model    *Model
	store    converter.Store
	opts     ModelOptions
	lastUsed atomic.Int64 // unix nanos of the last routed request
	evicted  bool         // true between EvictIdle and lazy reload
}

func (e *entry) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

// group is one model name's version set plus its rollout state: which
// version is the default, whether a canary takes a weighted slice of
// traffic, and whether a shadow version receives duplicate-and-discard
// traffic.
type group struct {
	base string

	mu        sync.Mutex
	versions  map[string]*entry
	order     []string // registration order; order[0]'s successor inherits default on unload
	defaultV  string
	canaryV   string
	canaryPct int
	shadowV   string
}

// Route labels for metrics and response headers.
const (
	RouteStable = "stable"
	RouteCanary = "canary"
	RoutePinned = "pinned"
	RouteShadow = "shadow"
)

// Registry holds the named models a server exposes, each name a group of
// versions with rollout routing. Multiple models may be loaded
// concurrently, each with its own backend, batching config and replica
// pool.
type Registry struct {
	mu     sync.Mutex
	groups map[string]*group
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: map[string]*group{}}
}

// groupFor returns (creating if asked) the named group.
func (r *Registry) groupFor(base string, create bool) (*group, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[base]
	if !ok && create {
		g = &group{base: base, versions: map[string]*entry{}}
		r.groups[base] = g
		ok = true
	}
	return g, ok
}

// newModel builds the registry entry struct (not yet loaded).
func newModel(name string, opts ModelOptions) *Model {
	backend := opts.Backend
	if backend == "" {
		backend = "node"
	}
	cfg := opts.Batching.withDefaults()
	if opts.Replicas > 1 && cfg.Workers < opts.Replicas {
		// One worker per replica, or the pool can never run them all
		// concurrently: workers pull from the queue and each occupies one
		// replica for the duration of a batch.
		cfg.Workers = opts.Replicas
	}
	// Resolve the execution config: the deprecated Disable* booleans seed
	// the defaults, then the Exec option list overrides — so callers on the
	// new surface always win.
	var shim []exec.Option
	if opts.DisableOptimize {
		shim = append(shim, exec.WithOptimize(false))
	}
	if opts.DisableVerify {
		shim = append(shim, exec.WithVerify(false))
	}
	m := &Model{
		name:     name,
		backend:  backend,
		exec:     exec.Make(append(shim, opts.Exec...)...),
		replicas: opts.Replicas,
		cfg:      cfg,
		metrics:  NewMetrics(),
		state:    StateLoading,
		ready:    make(chan struct{}),
	}
	if opts.Tenants != nil {
		m.adm = newAdmission(opts.Tenants, cfg.QueueSize)
	}
	return m
}

// Load registers name (optionally "base@version") and starts loading its
// artifacts asynchronously; the returned model reports StateLoading until
// done (WaitReady blocks). The first version loaded under a base becomes
// the group's default; later versions receive traffic only when promoted,
// canaried, shadowed, or addressed explicitly as base@version.
func (r *Registry) Load(name string, store converter.Store, opts ModelOptions) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serving: empty model name")
	}
	base, version := parseModelName(name)
	if base == "" {
		return nil, fmt.Errorf("serving: model name %q has no base", name)
	}
	m := newModel(name, opts)
	g, _ := r.groupFor(base, true)
	g.mu.Lock()
	if _, dup := g.versions[version]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("serving: model %q already loaded", name)
	}
	e := &entry{model: m, store: store, opts: opts}
	e.touch()
	g.versions[version] = e
	g.order = append(g.order, version)
	if len(g.order) == 1 {
		g.defaultV = version
	}
	g.mu.Unlock()
	go m.load(store)
	return m, nil
}

// install registers an already-built model under its name (tests and
// embedders that construct Models directly).
func (r *Registry) install(m *Model) {
	base, version := parseModelName(m.name)
	g, _ := r.groupFor(base, true)
	g.mu.Lock()
	defer g.mu.Unlock()
	e := &entry{model: m}
	e.touch()
	g.versions[version] = e
	g.order = append(g.order, version)
	if len(g.order) == 1 {
		g.defaultV = version
	}
}

// Unload stops and removes a model. A bare name removes the whole group;
// "base@version" removes one version — if it was the default, the oldest
// remaining version inherits the default (and any canary/shadow pointer
// at it is cleared).
func (r *Registry) Unload(name string) error {
	base, version := parseModelName(name)
	g, ok := r.groupFor(base, false)
	if !ok {
		return ErrNotFound
	}
	hadVersion := strings.Contains(name, "@")
	var toUnload []*Model
	if !hadVersion {
		// Whole group, whichever versions it holds.
		r.mu.Lock()
		delete(r.groups, base)
		r.mu.Unlock()
		g.mu.Lock()
		if len(g.versions) == 0 {
			g.mu.Unlock()
			return ErrNotFound
		}
		for _, e := range g.versions {
			if e.model != nil {
				toUnload = append(toUnload, e.model)
			}
		}
		g.versions = map[string]*entry{}
		g.order = nil
		g.mu.Unlock()
	} else {
		g.mu.Lock()
		e, ok := g.versions[version]
		if !ok {
			g.mu.Unlock()
			return ErrNotFound
		}
		delete(g.versions, version)
		for i, v := range g.order {
			if v == version {
				g.order = append(g.order[:i], g.order[i+1:]...)
				break
			}
		}
		if g.canaryV == version {
			g.canaryV, g.canaryPct = "", 0
		}
		if g.shadowV == version {
			g.shadowV = ""
		}
		if g.defaultV == version {
			g.defaultV = ""
			if len(g.order) > 0 {
				g.defaultV = g.order[0]
			}
		}
		empty := len(g.versions) == 0
		g.mu.Unlock()
		if e.model != nil {
			toUnload = append(toUnload, e.model)
		}
		if empty {
			r.mu.Lock()
			// Another Load may have raced a fresh group in; only remove ours.
			if cur, ok := r.groups[base]; ok && cur == g {
				delete(r.groups, base)
			}
			r.mu.Unlock()
		}
	}
	for _, m := range toUnload {
		m.unload()
	}
	return nil
}

// Get returns the named model without routing: "base" resolves to the
// group's default version, "base@version" to that exact version. Get is
// passive — it does not count routes, touch LRU clocks, or resurrect
// evicted versions.
func (r *Registry) Get(name string) (*Model, bool) {
	base, version := parseModelName(name)
	g, ok := r.groupFor(base, false)
	if !ok {
		return nil, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !strings.Contains(name, "@") {
		version = g.defaultV
	}
	e, ok := g.versions[version]
	if !ok || e.model == nil {
		return nil, false
	}
	return e.model, true
}

// RouteResult describes one routing decision.
type RouteResult struct {
	// Model serves the request.
	Model *Model
	// Route is how it was chosen: stable, canary, or pinned.
	Route string
	// Shadow, when non-nil, must receive a duplicate of the request whose
	// response is discarded.
	Shadow *Model
	// Resurrected reports that Model was just revived from eviction and is
	// loading; callers should WaitReady before predicting.
	Resurrected bool
}

// Route resolves a request's model with rollout routing: an explicit
// "base@version" pins that version; a bare name rolls the canary dice
// (canaryPct% of traffic to the canary version, the rest to the default)
// and attaches the shadow version when one is set. Routed entries'
// LRU clocks are touched, evicted entries are resurrected (the request
// should WaitReady on the returned model), and the chosen model's route
// counter increments.
func (r *Registry) Route(name string) (RouteResult, error) {
	base, version := parseModelName(name)
	g, ok := r.groupFor(base, false)
	if !ok {
		return RouteResult{}, ErrNotFound
	}
	pinned := strings.Contains(name, "@")
	g.mu.Lock()
	route := RoutePinned
	if !pinned {
		version = g.defaultV
		route = RouteStable
		if g.canaryV != "" && g.canaryPct > 0 && rand.Intn(100) < g.canaryPct {
			version = g.canaryV
			route = RouteCanary
		}
	}
	e, ok := g.versions[version]
	if !ok || e.model == nil {
		g.mu.Unlock()
		return RouteResult{}, ErrNotFound
	}
	res := RouteResult{Route: route}
	res.Model, res.Resurrected = g.resurrectLocked(e)
	if !pinned && g.shadowV != "" && g.shadowV != version {
		if se, ok := g.versions[g.shadowV]; ok && se.model != nil {
			res.Shadow, _ = g.resurrectLocked(se)
			res.Shadow.metrics.ObserveRoute(RouteShadow)
		}
	}
	g.mu.Unlock()
	res.Model.metrics.ObserveRoute(route)
	return res, nil
}

// resurrectLocked touches an entry's LRU clock and, if the entry was
// evicted, swaps in a fresh Model and restarts its asynchronous load from
// the retained store — the lazy artifact pull behind LRU eviction. Caller
// holds g.mu.
func (g *group) resurrectLocked(e *entry) (*Model, bool) {
	e.touch()
	if e.evicted && e.store != nil {
		m := newModel(e.model.name, e.opts)
		e.model = m
		e.evicted = false
		go m.load(e.store)
		return m, true
	}
	return e.model, false
}

// Promote makes version the group's default — the zero-downtime hot swap:
// the new default starts taking routed traffic at the instant the lock
// releases, while in-flight requests on the old default drain through its
// own scheduler untouched.
func (r *Registry) Promote(base, version string) error {
	g, ok := r.groupFor(base, false)
	if !ok {
		return ErrNotFound
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.versions[version]; !ok {
		return ErrNotFound
	}
	g.defaultV = version
	if g.canaryV == version {
		// The canary is now the default; the split is moot.
		g.canaryV, g.canaryPct = "", 0
	}
	return nil
}

// SetCanary routes percent% of the group's bare-name traffic to version.
// percent 0 clears the canary.
func (r *Registry) SetCanary(base, version string, percent int) error {
	if percent < 0 || percent > 100 {
		return fmt.Errorf("serving: canary percent %d out of range [0,100]", percent)
	}
	g, ok := r.groupFor(base, false)
	if !ok {
		return ErrNotFound
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if percent == 0 {
		g.canaryV, g.canaryPct = "", 0
		return nil
	}
	if _, ok := g.versions[version]; !ok {
		return ErrNotFound
	}
	g.canaryV, g.canaryPct = version, percent
	return nil
}

// SetShadow duplicates the group's bare-name traffic to version,
// discarding the duplicate's responses — the risk-free way to soak a new
// version on production traffic. An empty version clears the shadow.
func (r *Registry) SetShadow(base, version string) error {
	g, ok := r.groupFor(base, false)
	if !ok {
		return ErrNotFound
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if version == "" {
		g.shadowV = ""
		return nil
	}
	if _, ok := g.versions[version]; !ok {
		return ErrNotFound
	}
	g.shadowV = version
	return nil
}

// RolloutStatus is the JSON shape of one group's rollout state.
type RolloutStatus struct {
	Name          string   `json:"name"`
	Versions      []string `json:"versions"`
	Default       string   `json:"default"`
	Canary        string   `json:"canary,omitempty"`
	CanaryPercent int      `json:"canary_percent,omitempty"`
	Shadow        string   `json:"shadow,omitempty"`
	Evicted       []string `json:"evicted,omitempty"`
}

// Rollout reports a group's version set and routing state.
func (r *Registry) Rollout(base string) (RolloutStatus, error) {
	g, ok := r.groupFor(base, false)
	if !ok {
		return RolloutStatus{}, ErrNotFound
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := RolloutStatus{
		Name:          base,
		Versions:      append([]string(nil), g.order...),
		Default:       g.defaultV,
		Canary:        g.canaryV,
		CanaryPercent: g.canaryPct,
		Shadow:        g.shadowV,
	}
	for _, v := range g.order {
		if e := g.versions[v]; e != nil && e.evicted {
			st.Evicted = append(st.Evicted, v)
		}
	}
	return st, nil
}

// EvictIdle unloads versions that are not routing targets (not default,
// canary or shadow) and have not been routed to for at least idleFor.
// Evicted versions keep their registry slot and artifact store; the next
// pinned request resurrects them with a lazy reload. Returns the evicted
// display names.
func (r *Registry) EvictIdle(idleFor time.Duration) []string {
	cutoff := time.Now().Add(-idleFor).UnixNano()
	var evicted []string
	var toUnload []*Model
	for _, base := range r.groupNames() {
		g, ok := r.groupFor(base, false)
		if !ok {
			continue
		}
		g.mu.Lock()
		for v, e := range g.versions {
			if v == g.defaultV || v == g.canaryV || v == g.shadowV {
				continue
			}
			if e.evicted || e.model == nil || !e.model.Ready() {
				continue
			}
			if e.lastUsed.Load() > cutoff {
				continue
			}
			toUnload = append(toUnload, e.model)
			e.evicted = true
			evicted = append(evicted, displayName(base, v))
		}
		g.mu.Unlock()
	}
	for _, m := range toUnload {
		m.unload()
	}
	sort.Strings(evicted)
	return evicted
}

// groupNames lists group base names, sorted.
func (r *Registry) groupNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.groups))
	for base := range r.groups {
		out = append(out, base)
	}
	sort.Strings(out)
	return out
}

// Names lists loaded model display names, sorted.
func (r *Registry) Names() []string {
	var out []string
	for _, base := range r.groupNames() {
		g, ok := r.groupFor(base, false)
		if !ok {
			continue
		}
		g.mu.Lock()
		for _, v := range g.order {
			out = append(out, displayName(base, v))
		}
		g.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// models snapshots every registered model keyed by display name.
func (r *Registry) models() map[string]*Model {
	out := map[string]*Model{}
	for _, base := range r.groupNames() {
		g, ok := r.groupFor(base, false)
		if !ok {
			continue
		}
		g.mu.Lock()
		for v, e := range g.versions {
			if e.model != nil {
				out[displayName(base, v)] = e.model
			}
		}
		g.mu.Unlock()
	}
	return out
}

// Snapshots collects per-model metrics for the /metrics endpoint,
// including per-replica utilization and per-tenant admission state.
func (r *Registry) Snapshots() map[string]Snapshot {
	models := r.models()
	out := make(map[string]Snapshot, len(models))
	for name, m := range models {
		snap := m.metrics.snapshot(m.QueueDepth())
		snap.Replicas = m.replicaSnapshots()
		if m.adm != nil {
			snap.Tenants = m.adm.snapshots()
		}
		out[name] = snap
	}
	return out
}

// AllReady reports whether every registered, non-evicted model version is
// ready — the /readyz condition. An empty registry is ready.
func (r *Registry) AllReady() bool {
	for _, base := range r.groupNames() {
		g, ok := r.groupFor(base, false)
		if !ok {
			continue
		}
		g.mu.Lock()
		for _, e := range g.versions {
			if e.evicted || e.model == nil {
				continue
			}
			if e.model.State() == StateLoading || e.model.State() == StateFailed {
				g.mu.Unlock()
				return false
			}
		}
		g.mu.Unlock()
	}
	return true
}

// Close unloads every model.
func (r *Registry) Close() {
	for _, base := range r.groupNames() {
		//lint:ignore operr best-effort shutdown; Unload fails only for unknown names, which groupNames() just enumerated
		_ = r.Unload(base)
	}
}
