package serving

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/converter"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graphmodel"
	"repro/internal/kernels"
)

// replica is one independently executing copy of a model: its own engine
// (own backend instance, data plane, tidy-scope stack, execution lock)
// holding its own upload of the weights. Utilization counters feed the
// per-replica gauges in /metrics.
type replica struct {
	id  int
	eng *core.Engine
	run runner

	inflight atomic.Int64 // batches executing right now
	batches  atomic.Int64 // total batches executed
	busyNS   atomic.Int64 // total wall time spent executing
}

// ReplicaSnapshot is one replica's utilization for /metrics and the
// Snapshot JSON. The pool fields sample the replica backend's buffer
// recycler (zero-valued on backends without one): free-list inventory and
// the hit/miss/recycled counters that show whether steady-state inference
// is actually allocation-free on this replica.
type ReplicaSnapshot struct {
	ID                int     `json:"id"`
	Inflight          int64   `json:"inflight"`
	Batches           int64   `json:"batches"`
	BusyMS            float64 `json:"busy_ms"`
	PoolFreeBuffers   int     `json:"pool_free_buffers,omitempty"`
	PoolBytes         int64   `json:"pool_bytes,omitempty"`
	PoolHits          int64   `json:"pool_hits,omitempty"`
	PoolMisses        int64   `json:"pool_misses,omitempty"`
	PoolRecycledBytes int64   `json:"pool_recycled_bytes,omitempty"`
}

// pool routes batches across replicas. It implements runner, so the
// scheduler is oblivious to replication: each worker's run() call lands
// on the least-loaded replica, and two workers' calls on different
// replicas execute concurrently — this is where the per-replica-engine
// refactor cashes out as throughput.
type pool struct {
	replicas []*replica
	rr       atomic.Uint64
}

// newPool loads size replicas of a graph model. Replica 0 runs on the
// base engine; the rest on engines spawned from it. The graph is
// verified once (it is the same graph N times); each replica optimizes
// and compiles its own plan and uploads its own weight copy, so replicas
// share no mutable state at all.
func newPool(name string, store converter.Store, backend string, size int, ec exec.Config) (*pool, error) {
	g, err := converter.LoadArtifacts(store)
	if err != nil {
		return nil, err
	}
	base := core.Global()
	p := &pool{}
	for i := 0; i < size; i++ {
		eng := base
		if i > 0 {
			eng = base.SpawnReplica()
		}
		gm, err := graphmodel.New(g,
			graphmodel.WithEngine(eng),
			graphmodel.WithExecConfig(ec),
			graphmodel.WithVerify(ec.VerifyOn() && i == 0))
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("serving: loading replica %d: %w", i, err)
		}
		gm.SetName(name)
		run, err := newGraphRunner(gm, backend)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.replicas = append(p.replicas, &replica{id: i, eng: eng, run: run})
	}
	return p, nil
}

// run implements runner: execute the batch on the least-loaded replica.
func (p *pool) run(batch []Instance) ([]Instance, error) {
	r := p.acquire()
	r.inflight.Add(1)
	start := time.Now()
	out, err := r.run.run(batch)
	r.busyNS.Add(int64(time.Since(start)))
	r.batches.Add(1)
	r.inflight.Add(-1)
	return out, err
}

// acquire picks the replica with the fewest in-flight batches; ties break
// round-robin so idle pools still spread work (and weights stay warm on
// every replica). The counters race benignly with concurrent run() calls
// — a stale read costs one suboptimal placement, never correctness.
func (p *pool) acquire() *replica {
	n := uint64(len(p.replicas))
	if n == 1 {
		return p.replicas[0]
	}
	start := p.rr.Add(1)
	best := p.replicas[start%n]
	bestLoad := best.inflight.Load()
	for i := uint64(1); i < n && bestLoad > 0; i++ {
		r := p.replicas[(start+i)%n]
		if load := r.inflight.Load(); load < bestLoad {
			best, bestLoad = r, load
		}
	}
	return best
}

// estimateExecMS implements costEstimator: replicas run identical copies
// of one model, so the first replica's measured execution time stands in
// for the pool's.
func (p *pool) estimateExecMS() float64 {
	if len(p.replicas) == 0 {
		return 0
	}
	if est, ok := p.replicas[0].run.(costEstimator); ok {
		return est.estimateExecMS()
	}
	return 0
}

// size returns the replica count.
func (p *pool) size() int { return len(p.replicas) }

// snapshots samples per-replica utilization.
func (p *pool) snapshots() []ReplicaSnapshot {
	out := make([]ReplicaSnapshot, len(p.replicas))
	for i, r := range p.replicas {
		var bk kernels.MemoryInfo
		if r.eng != nil {
			bk = r.eng.Backend().Memory()
		}
		out[i] = ReplicaSnapshot{
			ID:                r.id,
			Inflight:          r.inflight.Load(),
			Batches:           r.batches.Load(),
			BusyMS:            float64(r.busyNS.Load()) / float64(time.Millisecond),
			PoolFreeBuffers:   bk.FreeBuffers,
			PoolBytes:         bk.PoolBytes,
			PoolHits:          bk.PoolHits,
			PoolMisses:        bk.PoolMisses,
			PoolRecycledBytes: bk.RecycledBytes,
		}
	}
	return out
}

// Close disposes every replica's weights (including partially built
// pools on the load error path).
func (p *pool) Close() {
	for _, r := range p.replicas {
		if gr, ok := r.run.(*graphRunner); ok {
			gm := gr.model
			gm.Engine().RunExclusive(gm.Dispose)
		}
	}
	p.replicas = nil
}
