package serving

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graphmodel"
	"repro/internal/layers"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// runner executes one batch of same-shaped instances against a loaded
// model. Implementations own every tensor they create and must be safe for
// concurrent calls (they serialize internally on the engine lock).
type runner interface {
	run(batch []Instance) ([]Instance, error)
}

// runnerFunc adapts a function to the runner interface (tests, stubs).
type runnerFunc func(batch []Instance) ([]Instance, error)

func (f runnerFunc) run(batch []Instance) ([]Instance, error) { return f(batch) }

// costEstimator is the optional runner refinement behind measured
// retry-after hints: a runner that can report its model's observed
// per-execution wall time (ms; 0 = nothing measured yet, e.g. profiling
// off or no executions). The scheduler folds the estimate into its
// backoff hint when the execute-stage histogram has no samples yet.
type costEstimator interface {
	estimateExecMS() float64
}

// recoverOpError converts op panics (shape mismatches, unknown kernels)
// into errors: one malformed request must not take the server down.
func recoverOpError(err *error) {
	if r := recover(); r != nil {
		if oe, ok := r.(*core.OpError); ok {
			*err = oe
			return
		}
		*err = fmt.Errorf("serving: execution panic: %v", r)
	}
}

// concatBatch uploads every instance as a [1, shape...] tensor and concats
// them along the batch dimension. Caller holds the execution lock.
func concatBatch(e *core.Engine, batch []Instance) *tensor.Tensor {
	parts := make([]*tensor.Tensor, len(batch))
	for i, in := range batch {
		parts[i] = e.MakeTensor(in.Values, append([]int{1}, in.Shape...), tensor.Float32)
	}
	if len(parts) == 1 {
		return parts[0]
	}
	batched := ops.Concat(parts, 0)
	for _, p := range parts {
		p.Dispose()
	}
	return batched
}

// splitBatch splits a [n, shape...] output back into per-example
// instances and disposes the batched tensor. Caller holds the execution
// lock.
func splitBatch(y *tensor.Tensor, n int) []Instance {
	outShape := tensor.CopyShape(y.Shape[1:])
	out := make([]Instance, n)
	if n == 1 {
		vals := y.DataSync()
		out[0] = Instance{Values: append([]float32(nil), vals...), Shape: outShape}
		y.Dispose()
		return out
	}
	parts := ops.Split(y, n, 0)
	y.Dispose()
	for i, p := range parts {
		vals := p.DataSync()
		out[i] = Instance{Values: append([]float32(nil), vals...), Shape: outShape}
		p.Dispose()
	}
	return out
}

// graphRunner serves a converted graph model. The batched input feeds the
// first serving input; predictions come from the first serving output.
type graphRunner struct {
	model   *graphmodel.Model
	backend string
	input   string
	output  string
}

func newGraphRunner(m *graphmodel.Model, backend string) (*graphRunner, error) {
	g := m.Graph()
	if len(g.Inputs) == 0 || len(g.Outputs) == 0 {
		return nil, fmt.Errorf("serving: graph model declares no serving signature (%d inputs, %d outputs)",
			len(g.Inputs), len(g.Outputs))
	}
	return &graphRunner{model: m, backend: backend, input: g.Inputs[0], output: g.Outputs[0]}, nil
}

// estimateExecMS implements costEstimator from the model's continuous
// profiler account.
func (r *graphRunner) estimateExecMS() float64 { return r.model.MeasuredExecuteMS() }

func (r *graphRunner) run(batch []Instance) (out []Instance, err error) {
	defer recoverOpError(&err)
	// The model's engine, not the global one: in a replica pool each
	// graphRunner is bound to its own engine, and the upload, execute and
	// split sections below all serialize on that engine alone — runs on
	// sibling replicas proceed concurrently.
	e := r.model.Engine()
	var batched *tensor.Tensor
	e.RunExclusive(func() {
		if serr := e.SetBackend(r.backend); serr != nil {
			err = serr
			return
		}
		batched = concatBatch(e, batch)
	})
	if err != nil {
		return nil, err
	}
	outs, err := r.model.Execute(map[string]*tensor.Tensor{r.input: batched})
	if err != nil {
		e.RunExclusive(func() { batched.Dispose() })
		return nil, err
	}
	e.RunExclusive(func() {
		batched.Dispose()
		out = splitBatch(outs[r.output], len(batch))
	})
	return out, nil
}

// layersRunner serves a restored Layers-API model via Sequential.Predict.
type layersRunner struct {
	model   *layers.Sequential
	backend string
	span    string // telemetry span label ("<name>:predict")
}

func (r *layersRunner) run(batch []Instance) (out []Instance, err error) {
	defer recoverOpError(&err)
	e := core.Global()
	e.RunExclusive(func() {
		if r.span != "" {
			end := e.Telemetry().BeginSpan(r.span)
			defer end()
		}
		if serr := e.SetBackend(r.backend); serr != nil {
			err = serr
			return
		}
		batched := concatBatch(e, batch)
		y := r.model.Predict(batched)
		batched.Dispose()
		out = splitBatch(y, len(batch))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
