// Package serving is the model-server subsystem: it turns the repository's
// conversion + execution pipeline (§5.1: convert → store → load → execute)
// into a production-shaped HTTP service, the deployment endpoint the
// ROADMAP's "heavy traffic" north star requires.
//
// Four layers:
//
//   - Registry: named models loaded from converter.Store artifact stores
//     (graph models and layers models), with per-model backend selection
//     and load/unload/ready lifecycle states.
//   - Batcher: a dynamic micro-batcher coalescing concurrent single-example
//     Predict requests into one batched Execute along the batch dimension
//     (Concat in, Split out), governed by MaxBatchSize and BatchTimeout.
//   - Scheduler: a bounded per-model request queue and worker pool with
//     backpressure — queue-full and not-ready fail fast instead of
//     blocking — and context-deadline propagation.
//   - HTTP API: a KServe-V1-style surface (GET /v1/models,
//     GET /v1/models/{name}, POST /v1/models/{name}:predict) plus /healthz
//     and /metrics with latency/batch-size histograms and engine memory
//     counters.
//
// Concurrency model: the engine's tidy scope stack is process-global, so
// every tensor-touching section runs under core.Engine.RunExclusive and
// whole-model executions serialize. Batching is therefore the throughput
// lever: one batched Execute amortizes per-call overhead (kernel dispatch,
// scope bookkeeping, weight reads) across the whole batch and gives the
// backend's parallel kernels enough work to use every core.
package serving

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors mapped to HTTP status codes by the API layer.
var (
	// ErrQueueFull rejects a request when the model's bounded queue is at
	// capacity — backpressure (429) instead of unbounded buffering.
	ErrQueueFull = errors.New("serving: request queue full")
	// ErrNotReady rejects requests to a model that is still loading or
	// failed to load (503).
	ErrNotReady = errors.New("serving: model not ready")
	// ErrNotFound rejects requests to an unregistered model (404).
	ErrNotFound = errors.New("serving: model not found")
	// ErrShuttingDown rejects requests after Unload/Close (503).
	ErrShuttingDown = errors.New("serving: model shutting down")
)

// Config tunes one model's scheduler and micro-batcher.
type Config struct {
	// MaxBatchSize caps how many queued single-example requests coalesce
	// into one batched execution. 1 disables batching. Default 16.
	MaxBatchSize int
	// BatchTimeout bounds how long an under-full batch waits for more
	// requests after the first arrives. Default 2ms.
	BatchTimeout time.Duration
	// QueueSize bounds the pending-request queue; submissions beyond it
	// fail with ErrQueueFull. Default 128.
	QueueSize int
	// Workers is the number of batch-assembly workers draining the queue.
	// Executions still serialize on the engine lock; extra workers overlap
	// batch assembly and result delivery with execution. Default 1.
	Workers int
	// RequestTimeout is the server-side cap on end-to-end request latency;
	// expired requests are dropped at batch assembly. 0 means 30s.
	RequestTimeout time.Duration
}

// withDefaults fills zero fields with production defaults.
func (c Config) withDefaults() Config {
	if c.MaxBatchSize <= 0 {
		c.MaxBatchSize = 16
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Millisecond
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Instance is one example crossing the serving boundary: a flat float32
// payload plus its per-example shape (no batch dimension; scalar instances
// have an empty shape).
type Instance struct {
	Values []float32
	Shape  []int
}

// shapeKey is a map key identifying instances that can share a batch.
func (in Instance) shapeKey() string { return fmt.Sprint(in.Shape) }

// numElements returns the product of the shape dimensions.
func (in Instance) numElements() int {
	n := 1
	for _, d := range in.Shape {
		n *= d
	}
	return n
}

// ParseInstance converts a decoded JSON value (nested arrays of numbers,
// or a bare number) into an Instance, inferring the shape from the
// nesting and validating that it is rectangular.
func ParseInstance(v any) (Instance, error) {
	var inst Instance
	shape, err := inferShape(v)
	if err != nil {
		return inst, err
	}
	inst.Shape = shape
	inst.Values = make([]float32, 0, inst.numElements())
	if err := flattenInto(v, shape, &inst.Values); err != nil {
		return inst, err
	}
	return inst, nil
}

func inferShape(v any) ([]int, error) {
	switch x := v.(type) {
	case float64:
		return nil, nil
	case []any:
		if len(x) == 0 {
			return []int{0}, nil
		}
		inner, err := inferShape(x[0])
		if err != nil {
			return nil, err
		}
		return append([]int{len(x)}, inner...), nil
	default:
		return nil, fmt.Errorf("serving: instance element %T is not a number or array", v)
	}
}

func flattenInto(v any, shape []int, out *[]float32) error {
	if len(shape) == 0 {
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("serving: ragged instance: expected number, got %T", v)
		}
		*out = append(*out, float32(f))
		return nil
	}
	arr, ok := v.([]any)
	if !ok || len(arr) != shape[0] {
		return fmt.Errorf("serving: ragged instance: expected array of %d, got %T", shape[0], v)
	}
	for _, e := range arr {
		if err := flattenInto(e, shape[1:], out); err != nil {
			return err
		}
	}
	return nil
}

// Render converts the instance back into nested arrays for JSON encoding.
func (in Instance) Render() any {
	v, _ := render(in.Values, in.Shape)
	return v
}

func render(values []float32, shape []int) (any, []float32) {
	if len(shape) == 0 {
		return values[0], values[1:]
	}
	out := make([]any, shape[0])
	for i := range out {
		out[i], values = render(values, shape[1:])
	}
	return out, values
}
