package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/converter"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/models"
	"repro/internal/native"
	"repro/internal/savedmodel"
	"repro/internal/telemetry"
)

func init() {
	e := core.Global()
	e.RegisterBackend("cpu", func() (kernels.Backend, error) { return cpu.New(), nil })
	e.RegisterBackend("node", func() (kernels.Backend, error) { return native.New(), nil })
}

// buildMobileNetStore converts a MobileNet-sized synthetic model into an
// in-memory artifact store — the §5.1 pipeline the server consumes.
func buildMobileNetStore(t testing.TB, inputSize, classes int) *converter.MemStore {
	t.Helper()
	model, err := models.MobileNetV1(models.MobileNetConfig{
		Alpha: 0.25, InputSize: inputSize, NumClasses: classes, IncludeTop: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Dispose()
	g, err := savedmodel.FromSequential(model, true)
	if err != nil {
		t.Fatal(err)
	}
	store := converter.NewMemStore()
	if _, err := converter.Convert(g, store, converter.Options{}); err != nil {
		t.Fatal(err)
	}
	return store
}

// stubModel builds a ready Model around an arbitrary runner, bypassing
// artifact loading (white-box scheduler/HTTP tests).
func stubModel(name string, cfg Config, run runner) *Model {
	m := &Model{
		name:    name,
		backend: "cpu",
		cfg:     cfg.withDefaults(),
		metrics: NewMetrics(),
		state:   StateReady,
		ready:   make(chan struct{}),
	}
	close(m.ready)
	m.sched = newScheduler(m.cfg, name, run, m.metrics)
	return m
}

// echoRunner returns each instance unchanged.
func echoRunner(batch []Instance) ([]Instance, error) { return batch, nil }

// TestServeEndToEnd is the acceptance scenario: a converted
// MobileNet-sized model in a MemStore, served on a loopback listener,
// hit with ≥32 concurrent JSON predict requests. All must succeed with
// the right output shape, and the batch-size histogram must record
// batches > 1.
func TestServeEndToEnd(t *testing.T) {
	const classes = 10
	store := buildMobileNetStore(t, 96, classes)

	reg := NewRegistry()
	defer reg.Close()
	m, err := reg.Load("mobilenet", store, ModelOptions{
		Backend: "node",
		Batching: Config{
			MaxBatchSize: 8,
			BatchTimeout: 20 * time.Millisecond,
			QueueSize:    64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	// One shared instance payload: a [96,96,3] image.
	img := Instance{Values: make([]float32, 96*96*3), Shape: []int{96, 96, 3}}
	for i := range img.Values {
		img.Values[i] = float32(i%255) / 255
	}
	body, err := json.Marshal(map[string]any{"instances": []any{img.Render()}})
	if err != nil {
		t.Fatal(err)
	}

	const concurrent = 32
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/models/mobilenet:predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var out struct {
				Predictions [][]float64 `json:"predictions"`
			}
			if err := json.Unmarshal(data, &out); err != nil {
				errs <- fmt.Errorf("bad response %s: %v", data, err)
				return
			}
			if len(out.Predictions) != 1 || len(out.Predictions[0]) != classes {
				errs <- fmt.Errorf("prediction shape: got %d x %d, want 1 x %d",
					len(out.Predictions), len(out.Predictions[0]), classes)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	if got := m.Metrics().Requests("ok"); got != concurrent {
		t.Errorf("ok requests = %d, want %d", got, concurrent)
	}
	if max := m.Metrics().MaxBatchObserved(); max <= 1 {
		t.Errorf("max observed batch = %d; micro-batching never coalesced", max)
	}

	// Readiness + listing endpoints.
	for _, check := range []struct {
		path string
		want string
	}{
		{"/v1/models", `"mobilenet"`},
		{"/v1/models/mobilenet", `"ready":true`},
		{"/healthz", "ok"},
		{"/metrics", `serving_requests_total{model="mobilenet",outcome="ok"} 32`},
	} {
		resp, err := http.Get(srv.URL + check.path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", check.path, resp.StatusCode)
		}
		if !strings.Contains(string(data), check.want) {
			t.Errorf("GET %s: response %q does not contain %q", check.path, data, check.want)
		}
	}

	// The metrics endpoint must report engine allocation state.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"engine_num_tensors", "engine_num_bytes", "serving_batch_size_total", "serving_request_latency_ms"} {
		if !strings.Contains(string(data), metric) {
			t.Errorf("/metrics missing %s:\n%s", metric, data)
		}
	}
}

// TestQueueFullReturns429 verifies backpressure: with a single stuck
// worker and a queue of one, the next request fails fast with 429 rather
// than blocking forever.
func TestQueueFullReturns429(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	run := runnerFunc(func(batch []Instance) ([]Instance, error) {
		entered <- struct{}{}
		<-block
		return batch, nil
	})
	m := stubModel("stuck", Config{MaxBatchSize: 1, QueueSize: 1, Workers: 1}, run)
	defer m.unload()
	reg := NewRegistry()
	reg.install(m)

	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	inst := Instance{Values: []float32{1}, Shape: []int{1}}
	var wg sync.WaitGroup
	// First request occupies the worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = m.Predict(context.Background(), inst)
	}()
	<-entered
	// Second request fills the queue (cap 1).
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = m.Predict(context.Background(), inst)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request must bounce with 429 immediately.
	body := `{"instances": [[1]]}`
	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/models/stuck:predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, data)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("429 took %v; backpressure must not block", elapsed)
	}
	if got := m.Metrics().Requests("queue_full"); got == 0 {
		t.Error("queue_full outcome not recorded")
	}
	close(block)
	wg.Wait()
}

// TestNotReadyAndNotFound covers the 503 and 404 paths.
func TestNotReadyAndNotFound(t *testing.T) {
	reg := NewRegistry()
	loading := &Model{
		name: "slow", backend: "cpu", cfg: Config{}.withDefaults(),
		metrics: NewMetrics(), state: StateLoading, ready: make(chan struct{}),
	}
	reg.install(loading)

	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/models/slow:predict", "application/json", strings.NewReader(`{"instances": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("loading model predict: status %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/models/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("loading model status: status %d, want 503", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/models/ghost:predict", "application/json", strings.NewReader(`{"instances": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", resp.StatusCode)
	}
}

// TestLayersModelServing loads a layers-format artifact store and serves
// it through the same registry.
func TestLayersModelServing(t *testing.T) {
	model, err := models.MobileNetV1(models.MobileNetConfig{
		Alpha: 0.25, InputSize: 96, NumClasses: 5, IncludeTop: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Dispose()
	store := converter.NewMemStore()
	if _, err := converter.SaveLayersModel(model, store, converter.Options{}); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	defer reg.Close()
	m, err := reg.Load("layers", store, ModelOptions{Backend: "node"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Status().Format != "layers-model" {
		t.Errorf("format = %q, want layers-model", m.Status().Format)
	}

	inst := Instance{Values: make([]float32, 96*96*3), Shape: []int{96, 96, 3}}
	out, err := m.Predict(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Shape) != 1 || out.Shape[0] != 5 {
		t.Errorf("output shape %v, want [5]", out.Shape)
	}
}

// TestUnload removes a model and verifies subsequent requests 404.
func TestUnload(t *testing.T) {
	m := stubModel("gone", Config{}, runnerFunc(echoRunner))
	reg := NewRegistry()
	reg.install(m)

	if err := reg.Unload("gone"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unload("gone"); err != ErrNotFound {
		t.Errorf("double unload: %v, want ErrNotFound", err)
	}
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/models/gone:predict", "application/json", strings.NewReader(`{"instances": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestRequestTimeout verifies deadline propagation: a stuck model must
// not hold requests past their context deadline.
func TestRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	run := runnerFunc(func(batch []Instance) ([]Instance, error) {
		<-block
		return batch, nil
	})
	m := stubModel("stuck", Config{MaxBatchSize: 1, QueueSize: 8}, run)
	defer m.unload()
	// LIFO: unblock the runner before unload's Close waits on the worker.
	defer close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := m.Predict(ctx, Instance{Values: []float32{1}, Shape: []int{1}})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	if statusFor(err) != http.StatusGatewayTimeout {
		t.Errorf("statusFor(DeadlineExceeded) = %d, want 504", statusFor(err))
	}
}

// TestLoadFailure surfaces converter errors through WaitReady and status.
func TestLoadFailure(t *testing.T) {
	store := converter.NewMemStore() // no model.json
	reg := NewRegistry()
	defer reg.Close()
	m, err := reg.Load("broken", store, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitReady(context.Background()); err == nil {
		t.Fatal("WaitReady on a broken store: want error")
	}
	st := m.Status()
	if st.State != "failed" || st.Error == "" {
		t.Errorf("status = %+v, want failed with error", st)
	}
}

// TestTraceAndKernelBreakdown exercises the telemetry-backed surfaces: a
// predict request must populate per-model per-kernel series on /metrics
// that agree with the server's stats aggregator, and /debug/trace must
// download schema-valid Chrome trace JSON containing kernel events.
func TestTraceAndKernelBreakdown(t *testing.T) {
	store := buildMobileNetStore(t, 96, 10)
	reg := NewRegistry()
	defer reg.Close()
	m, err := reg.Load("mnet", store, ModelOptions{Backend: "node"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	img := Instance{Values: make([]float32, 96*96*3), Shape: []int{96, 96, 3}}
	body, err := json.Marshal(map[string]any{"instances": []any{img.Render()}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/models/mnet:predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}

	// /metrics carries the per-model kernel breakdown, and every rendered
	// line agrees with the stats aggregator by construction.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `serving_kernel_invocations_total{model="mnet"`) {
		t.Fatalf("/metrics missing per-model kernel series:\n%.2000s", metrics)
	}
	agreed := 0
	for _, span := range api.Stats().Spans() {
		if modelOfSpan(span) != "mnet" {
			continue
		}
		for _, ks := range api.Stats().KernelsForSpan(span) {
			line := fmt.Sprintf("serving_kernel_invocations_total{model=%q,kernel=%q} %d\n", "mnet", ks.Name, ks.Count)
			if !strings.Contains(string(metrics), line) {
				t.Errorf("/metrics disagrees with aggregator: missing %q", strings.TrimSpace(line))
			}
			agreed++
		}
	}
	if agreed == 0 {
		t.Fatalf("no kernels attributed to span of model mnet; spans: %v", api.Stats().Spans())
	}

	// /debug/trace downloads schema-valid Chrome trace JSON with kernel
	// events inside.
	resp, err = http.Get(srv.URL + "/debug/trace?seconds=120")
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", resp.StatusCode)
	}
	if err := telemetry.ValidateChromeTrace(trace); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	if !strings.Contains(string(trace), `"cat":"kernel"`) {
		t.Errorf("trace has no kernel events:\n%.500s", trace)
	}

	// Malformed window → 400.
	resp, err = http.Get(srv.URL + "/debug/trace?seconds=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seconds: status %d, want 400", resp.StatusCode)
	}
}
