package serving

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Request-flow tracing (Dapper-style): the HTTP layer mints (or accepts)
// one request ID per schedulable unit, the context carries it into the
// scheduler, and the batcher emits per-request stage events tagged with
// it. A separate numeric flow ID — unique per request — draws the Chrome
// flow arrow from the request's span into the batched execution it was
// coalesced into, making the N-requests-into-one-batch fan-in visible in
// chrome://tracing.

// requestIDKey is the context key carrying the request/trace ID.
type requestIDKey struct{}

// WithRequestID returns a context carrying the given request/trace ID;
// the scheduler tags all per-request telemetry events with it.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request/trace ID from a context, or "" when the
// request arrived untagged.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// idCounter feeds both generated request IDs and flow IDs. Monotonic per
// process; uniqueness is all the trace viewer needs.
var idCounter atomic.Uint64

// nextID reserves one fresh ID.
func nextID() uint64 { return idCounter.Add(1) }

// generateRequestID mints an ID for requests that arrived without an
// inbound X-Request-ID.
func generateRequestID() string { return fmt.Sprintf("req-%d", nextID()) }
