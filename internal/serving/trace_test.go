package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestRequestFlowFanIn is the tracing acceptance scenario: concurrent
// predict requests coalesce into one batch, and the downloaded trace
// must contain flow events linking at least two request spans (ph "s",
// distinct ids) into the batched execution (matching ph "f" events bound
// to the batch slice), all schema-valid. It also checks the X-Request-ID
// contract: inbound IDs are honored and echoed, and the same ID tags the
// request's events in the trace.
func TestRequestFlowFanIn(t *testing.T) {
	// A runner slow enough that requests queue behind the first batch.
	run := runnerFunc(func(batch []Instance) ([]Instance, error) {
		time.Sleep(5 * time.Millisecond)
		return batch, nil
	})
	m := stubModel("flow", Config{MaxBatchSize: 8, BatchTimeout: 50 * time.Millisecond, Workers: 1}, run)
	defer m.unload()
	reg := NewRegistry()
	reg.install(m)

	api := NewServer(reg) // registers the trace recorder → hub active
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Fire concurrent requests; the 50ms batch timeout guarantees the
	// ones that arrive while the first waits share its batch.
	const clients = 4
	var wg sync.WaitGroup
	echoed := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/models/flow:predict",
				strings.NewReader(`{"instances": [[1, 2]]}`))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Request-ID", "client-"+string(rune('a'+i)))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("predict status %d", resp.StatusCode)
			}
			echoed[i] = resp.Header.Get("X-Request-ID")
		}(i)
	}
	wg.Wait()
	for i, id := range echoed {
		if want := "client-" + string(rune('a'+i)); id != want {
			t.Errorf("response %d echoed X-Request-ID %q, want %q", i, id, want)
		}
	}

	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.ValidateChromeTrace(trace); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}

	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			ID    string         `json:"id"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &parsed); err != nil {
		t.Fatal(err)
	}
	starts := map[string]bool{}
	finishes := map[string]bool{}
	traceIDs := map[string]bool{}
	maxBatch := 0.0
	for _, te := range parsed.TraceEvents {
		switch te.Phase {
		case "s":
			starts[te.ID] = true
		case "f":
			finishes[te.ID] = true
		}
		if te.Cat == "request" {
			if id, _ := te.Args["trace"].(string); id != "" {
				traceIDs[id] = true
			}
		}
		if te.Name == "batch" && te.Phase == "X" {
			if size, ok := te.Args["batch_size"].(float64); ok && size > maxBatch {
				maxBatch = size
			}
		}
	}
	linked := 0
	for id := range starts {
		if finishes[id] {
			linked++
		}
	}
	if linked < 2 {
		t.Errorf("only %d request flows link into a batch, want >= 2 (starts %d, finishes %d)",
			linked, len(starts), len(finishes))
	}
	if maxBatch < 2 {
		t.Errorf("largest traced batch = %.0f, want >= 2 (fan-in not captured)", maxBatch)
	}
	for i := 0; i < clients; i++ {
		if want := "client-" + string(rune('a'+i)); !traceIDs[want] {
			t.Errorf("trace has no request span tagged %q; tagged: %v", want, traceIDs)
		}
	}
}

// TestQueueRejectedCounter verifies the rejection satellite: a submit
// bounced by a full queue increments the per-model counter and surfaces
// as serving_queue_rejected_total in /metrics.
func TestQueueRejectedCounter(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	run := runnerFunc(func(batch []Instance) ([]Instance, error) {
		entered <- struct{}{}
		<-block
		return batch, nil
	})
	m := stubModel("rej", Config{MaxBatchSize: 1, QueueSize: 1, Workers: 1}, run)
	defer m.unload()
	reg := NewRegistry()
	reg.install(m)

	inst := Instance{Values: []float32{1}, Shape: []int{1}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = m.Predict(context.Background(), inst) }()
	<-entered // worker is stuck in the runner
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = m.Predict(context.Background(), inst) }()
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := m.Predict(context.Background(), inst); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit returned %v, want ErrQueueFull", err)
	}
	if got := m.Metrics().Rejected(); got != 1 {
		t.Errorf("Rejected() = %d, want 1", got)
	}

	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `serving_queue_rejected_total{model="rej"} 1`) {
		t.Errorf("/metrics missing rejection counter:\n%.1500s", metrics)
	}
	close(block)
	wg.Wait()
}

// TestGatherDropsAbandonedRequests verifies the ctx.Err() satellite: a
// request whose submitter gave up while it sat in the queue is answered
// and discarded at batch admission — the runner never sees it.
func TestGatherDropsAbandonedRequests(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	var mu sync.Mutex
	var seen []float32
	run := runnerFunc(func(batch []Instance) ([]Instance, error) {
		mu.Lock()
		for _, in := range batch {
			seen = append(seen, in.Values[0])
		}
		mu.Unlock()
		entered <- struct{}{}
		<-block
		return batch, nil
	})
	m := stubModel("drop", Config{MaxBatchSize: 1, QueueSize: 4, Workers: 1}, run)
	defer m.unload()

	// Request 1 occupies the worker inside the runner.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = m.Predict(context.Background(), Instance{Values: []float32{1}, Shape: []int{1}})
	}()
	<-entered

	// Request 2 queues behind it, then its client gives up.
	ctx2, cancel2 := context.WithCancel(context.Background())
	wg.Add(1)
	errs := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := m.Predict(ctx2, Instance{Values: []float32{2}, Shape: []int{1}})
		errs <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel2()
	if err := <-errs; err != context.Canceled {
		t.Fatalf("abandoned submit returned %v, want context.Canceled", err)
	}

	// Request 3 arrives after; once the worker unblocks it must execute
	// request 3 but never request 2.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = m.Predict(context.Background(), Instance{Values: []float32{3}, Shape: []int{1}})
	}()
	close(block)
	select {
	case <-entered: // request 3 reached the runner
	case <-time.After(5 * time.Second):
		t.Fatal("third request never executed")
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, v := range seen {
		if v == 2 {
			t.Fatalf("abandoned request reached the runner: executed %v", seen)
		}
	}
	want := map[float32]bool{1: false, 3: false}
	for _, v := range seen {
		want[v] = true
	}
	if !want[1] || !want[3] {
		t.Fatalf("live requests not all executed: %v", seen)
	}
}

// TestDebugMemoryEndpoint exercises /debug/memory: the plain report
// carries the engine counters and backend name, a leak-capture window
// returns a leaks section, and a malformed parameter is a 400.
func TestDebugMemoryEndpoint(t *testing.T) {
	reg := NewRegistry()
	api := NewServer(reg)
	defer api.Close()
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/memory")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/memory status %d", resp.StatusCode)
	}
	var rep struct {
		Backend string `json:"backend"`
		Engine  struct {
			NumTensors int `json:"NumTensors"`
		} `json:"engine"`
		Leaks *json.RawMessage `json:"leaks"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing /debug/memory: %v\n%s", err, data)
	}
	if rep.Backend == "" {
		t.Errorf("report has no backend name: %s", data)
	}
	if rep.Leaks != nil {
		t.Errorf("plain report unexpectedly contains a leak capture: %s", data)
	}

	resp, err = http.Get(srv.URL + "/debug/memory?leaks=0.05")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/memory?leaks status %d: %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte(`"leaks"`)) {
		t.Errorf("leak capture response missing leaks section: %s", data)
	}

	resp, err = http.Get(srv.URL + "/debug/memory?leaks=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad leaks parameter: status %d, want 400", resp.StatusCode)
	}
}
