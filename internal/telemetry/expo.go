package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Exposition is the shared metrics sample model behind the /metrics
// endpoint's two wire formats. Producers append typed samples in whatever
// order they naturally iterate; the legacy renderer replays them verbatim
// (one line per sample, insertion order, no metadata — byte-identical to
// the original hand-rolled exposition), while the OpenMetrics renderer
// regroups the same samples into contiguous metric families with HELP and
// TYPE metadata, per the OpenMetrics 1.0 text format.
//
// One producer, two renderers: the serving handler negotiates the format
// from the Accept header, and the two outputs can never drift apart
// because they come from the same sample list.

// MetricType is the OpenMetrics family type.
type MetricType string

const (
	TypeCounter MetricType = "counter"
	TypeGauge   MetricType = "gauge"
)

// Label is one name="value" pair. Order is significant: samples render
// labels in the order given.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// sample is one exposition line.
type sample struct {
	name     string // full sample name, including any _total suffix
	labels   []Label
	intVal   int64
	floatVal float64
	isFloat  bool
}

// family is one metric family's metadata. The family name is the sample
// name with the OpenMetrics counter convention applied: a counter family
// "foo" has samples named "foo_total".
type family struct {
	name   string
	omName string // OpenMetrics sample-name override ("" = use name)
	typ    MetricType
	help   string
}

// Exposition accumulates samples for one scrape.
type Exposition struct {
	samples  []sample
	families map[string]*family // keyed by sample name
	famOrder []string           // sample-name order of first declaration
}

// NewExposition returns an empty sample set.
func NewExposition() *Exposition {
	return &Exposition{families: map[string]*family{}}
}

// Family declares metadata for the samples named name (the full sample
// name, e.g. "serving_requests_total" for a counter). Declaring a family
// twice keeps the first metadata. Samples without a declared family render
// as untyped gauges with no HELP text.
func (e *Exposition) Family(name string, typ MetricType, help string) {
	if _, ok := e.families[name]; ok {
		return
	}
	e.families[name] = &family{name: name, typ: typ, help: help}
	e.famOrder = append(e.famOrder, name)
}

// FamilyOM declares metadata like Family, but renders the family and its
// samples under omName in the OpenMetrics format (the legacy format keeps
// name, so existing scrapers see no change). Needed when a legacy gauge
// name collides with a counter family after _total stripping — OpenMetrics
// forbids two families with the same name, the flat format doesn't care.
func (e *Exposition) FamilyOM(name, omName string, typ MetricType, help string) {
	if _, ok := e.families[name]; ok {
		return
	}
	e.families[name] = &family{name: name, omName: omName, typ: typ, help: help}
	e.famOrder = append(e.famOrder, name)
}

// Int appends one integer-valued sample (rendered with %d).
func (e *Exposition) Int(name string, v int64, labels ...Label) {
	e.samples = append(e.samples, sample{name: name, labels: labels, intVal: v})
}

// Float appends one float-valued sample (rendered with %.3f, matching the
// millisecond precision of the original exposition).
func (e *Exposition) Float(name string, v float64, labels ...Label) {
	e.samples = append(e.samples, sample{name: name, labels: labels, floatVal: v, isFloat: true})
}

// legacyLabels renders {a="x",b="y"} with Go %q escaping — the exact bytes
// the original fmt.Fprintf(..., %q) exposition produced.
func legacyLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeOM escapes a label value per the OpenMetrics text format:
// backslash, double-quote and newline.
func escapeOM(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeOMHelp escapes HELP text: backslash and newline (quotes are legal
// in help text).
func escapeOMHelp(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// omLabels renders the label set with OpenMetrics escaping.
func omLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeOM(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (s *sample) value() string {
	if s.isFloat {
		return fmt.Sprintf("%.3f", s.floatVal)
	}
	return strconv.FormatInt(s.intVal, 10)
}

// RenderLegacy writes the original flat text format: one line per sample
// in insertion order, no metadata lines. Byte-identical to the exposition
// the serving handler emitted before the sample model existed.
func (e *Exposition) RenderLegacy() string {
	var b strings.Builder
	for i := range e.samples {
		s := &e.samples[i]
		b.WriteString(s.name)
		b.WriteString(legacyLabels(s.labels))
		b.WriteByte(' ')
		b.WriteString(s.value())
		b.WriteByte('\n')
	}
	return b.String()
}

// omFamilyName maps a sample name to its OpenMetrics family name: counter
// samples are named <family>_total, so the family strips the suffix.
func omFamilyName(sampleName string, typ MetricType) string {
	if typ == TypeCounter {
		return strings.TrimSuffix(sampleName, "_total")
	}
	return sampleName
}

// RenderOpenMetrics writes the OpenMetrics 1.0 text format: metric
// families are contiguous, each preceded by its # HELP and # TYPE lines
// (family order = declaration order, then first-appearance order for
// undeclared names), counter families drop the _total suffix from the
// family name while their samples keep it, and the output ends with the
// mandatory # EOF line.
func (e *Exposition) RenderOpenMetrics() string {
	// Group sample indices by sample name, preserving intra-family order.
	bySampleName := map[string][]int{}
	var nameOrder []string
	for i := range e.samples {
		n := e.samples[i].name
		if _, ok := bySampleName[n]; !ok {
			nameOrder = append(nameOrder, n)
		}
		bySampleName[n] = append(bySampleName[n], i)
	}
	// Families render in declaration order; sample names never declared
	// follow in first-appearance order as untyped gauges.
	seen := map[string]bool{}
	ordered := make([]string, 0, len(nameOrder))
	for _, n := range e.famOrder {
		if len(bySampleName[n]) > 0 && !seen[n] {
			ordered = append(ordered, n)
			seen[n] = true
		}
	}
	for _, n := range nameOrder {
		if !seen[n] {
			ordered = append(ordered, n)
			seen[n] = true
		}
	}
	var b strings.Builder
	for _, n := range ordered {
		fam := e.families[n]
		typ := TypeGauge
		help := ""
		if fam != nil {
			typ = fam.typ
			help = fam.help
		}
		sname := n
		if fam != nil && fam.omName != "" {
			sname = fam.omName
		}
		fname := omFamilyName(sname, typ)
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fname, escapeOMHelp(help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fname, typ)
		for _, i := range bySampleName[n] {
			s := &e.samples[i]
			b.WriteString(sname)
			b.WriteString(omLabels(s.labels))
			b.WriteByte(' ')
			b.WriteString(s.value())
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Strict OpenMetrics parsing — shared by the tfjs-profile live view and
// the format tests, so what the renderer emits is continuously checked
// against what a consumer accepts.

// ParsedSample is one parsed exposition line.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns one label's value ("" when absent).
func (s ParsedSample) Label(name string) string { return s.Labels[name] }

// ParsedFamily is one metric family: its metadata plus samples in
// exposition order.
type ParsedFamily struct {
	Name    string // family name (no _total suffix for counters)
	Type    MetricType
	Help    string
	Samples []ParsedSample
}

// Parsed is one parsed scrape.
type Parsed struct {
	Families []ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family (nil when absent).
func (p *Parsed) Family(name string) *ParsedFamily { return p.byName[name] }

// Value returns the value of the sample with the given full sample name
// whose labels are a superset of want (nil matches any). The second
// result reports whether such a sample exists.
func (p *Parsed) Value(sampleName string, want map[string]string) (float64, bool) {
	for i := range p.Families {
		for _, s := range p.Families[i].Samples {
			if s.Name != sampleName {
				continue
			}
			match := true
			for k, v := range want {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// Samples returns every sample with the given full sample name across all
// families.
func (p *Parsed) Samples(sampleName string) []ParsedSample {
	var out []ParsedSample
	for i := range p.Families {
		for _, s := range p.Families[i].Samples {
			if s.Name == sampleName {
				out = append(out, s)
			}
		}
	}
	return out
}

// validMetricName reports whether s is a legal metric/label identifier.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// sampleBelongs reports whether a sample name is legal inside the family:
// exactly the family name, or family name + a recognized counter suffix.
func sampleBelongs(famName, sampleName string, typ MetricType) bool {
	if typ == TypeCounter {
		return sampleName == famName+"_total" || sampleName == famName+"_created"
	}
	return sampleName == famName
}

// parseFam is one family under construction, with the once-only flags the
// strict checks need.
type parseFam struct {
	ParsedFamily
	typeSet bool
	helpSet bool
}

// ParseExposition parses OpenMetrics text strictly: metadata (# HELP,
// # TYPE) must precede a family's samples and appear at most once per
// family, families must be contiguous (a sample from an earlier family
// reappearing after another family started is an error), label values must
// use valid escaping, sample names must match their family per the
// counter _total convention, and the input must end with "# EOF".
func ParseExposition(text string) (*Parsed, error) {
	fams := map[string]*parseFam{}
	var order []*parseFam
	var cur *parseFam
	// open starts (or errors on reopening) the family named name.
	open := func(name string, lineNo int) error {
		if fams[name] != nil {
			return fmt.Errorf("openmetrics: line %d: family %q reopened (families must be contiguous)", lineNo, name)
		}
		cur = &parseFam{ParsedFamily: ParsedFamily{Name: name, Type: TypeGauge}}
		fams[name] = cur
		order = append(order, cur)
		return nil
	}
	sawEOF := false
	lines := strings.Split(text, "\n")
	for li, line := range lines {
		lineNo := li + 1
		if line == "" {
			// Only the trailing newline's empty remainder is allowed.
			if li != len(lines)-1 {
				return nil, fmt.Errorf("openmetrics: line %d: blank line", lineNo)
			}
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseMetaLine(line, lineNo)
			if err != nil {
				return nil, err
			}
			if cur == nil || cur.Name != name {
				if err := open(name, lineNo); err != nil {
					return nil, err
				}
			}
			if len(cur.Samples) > 0 {
				return nil, fmt.Errorf("openmetrics: line %d: # %s %s after samples of the family", lineNo, kind, name)
			}
			switch kind {
			case "HELP":
				if cur.helpSet {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate HELP for %q", lineNo, name)
				}
				cur.helpSet = true
				cur.Help = rest
			case "TYPE":
				if cur.typeSet {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate TYPE for %q", lineNo, name)
				}
				cur.typeSet = true
				switch rest {
				case "counter":
					cur.Type = TypeCounter
				case "gauge":
					cur.Type = TypeGauge
				default:
					return nil, fmt.Errorf("openmetrics: line %d: unsupported type %q", lineNo, rest)
				}
			}
			continue
		}
		s, err := parseSampleLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		if cur == nil || !sampleBelongs(cur.Name, s.Name, cur.Type) {
			// A sample with no preceding metadata opens its own untyped
			// family named after the sample.
			if err := open(s.Name, lineNo); err != nil {
				return nil, err
			}
		}
		cur.Samples = append(cur.Samples, s)
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	p := &Parsed{byName: map[string]*ParsedFamily{}}
	for _, f := range order {
		p.Families = append(p.Families, f.ParsedFamily)
	}
	for i := range p.Families {
		p.byName[p.Families[i].Name] = &p.Families[i]
	}
	return p, nil
}

// parseMetaLine parses "# HELP name text" / "# TYPE name type".
func parseMetaLine(line string, lineNo int) (kind, name, rest string, err error) {
	body, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return "", "", "", fmt.Errorf("openmetrics: line %d: malformed comment %q (want \"# HELP\" / \"# TYPE\" / \"# EOF\")", lineNo, line)
	}
	kind, body, ok = strings.Cut(body, " ")
	if !ok || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", fmt.Errorf("openmetrics: line %d: unknown metadata %q", lineNo, line)
	}
	name, rest, ok = strings.Cut(body, " ")
	if !ok || !validMetricName(name) {
		return "", "", "", fmt.Errorf("openmetrics: line %d: malformed %s line %q", lineNo, kind, line)
	}
	return kind, name, rest, nil
}

// parseSampleLine parses one `name{labels} value` line with strict
// escaping rules.
func parseSampleLine(line string, lineNo int) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("openmetrics: line %d: invalid metric name %q", lineNo, s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++ // consume '{'
		for {
			if i >= len(line) {
				return s, fmt.Errorf("openmetrics: line %d: unterminated label set", lineNo)
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("openmetrics: line %d: malformed label (missing =)", lineNo)
			}
			lname := line[i:j]
			if !validMetricName(lname) {
				return s, fmt.Errorf("openmetrics: line %d: invalid label name %q", lineNo, lname)
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("openmetrics: line %d: duplicate label %q", lineNo, lname)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return s, fmt.Errorf("openmetrics: line %d: label value must be quoted", lineNo)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return s, fmt.Errorf("openmetrics: line %d: unterminated label value", lineNo)
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					if i+1 >= len(line) {
						return s, fmt.Errorf("openmetrics: line %d: dangling escape in label value", lineNo)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("openmetrics: line %d: invalid escape \\%c in label value", lineNo, line[i+1])
					}
					i += 2
					continue
				}
				val.WriteByte(c)
				i++
			}
			s.Labels[lname] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			return s, fmt.Errorf("openmetrics: line %d: expected ',' or '}' in label set", lineNo)
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("openmetrics: line %d: missing value separator", lineNo)
	}
	valStr := line[i+1:]
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("openmetrics: line %d: malformed value %q", lineNo, valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("openmetrics: line %d: bad sample value %q: %v", lineNo, valStr, err)
	}
	s.Value = v
	return s, nil
}
