package telemetry

import (
	"strings"
	"testing"
)

// buildTestExposition assembles a small two-family scrape exercising
// counters, gauges, float rendering and labels.
func buildTestExposition() *Exposition {
	e := NewExposition()
	e.Family("requests_total", TypeCounter, "Requests served.")
	e.Family("queue_depth", TypeGauge, "Requests waiting.")
	e.Int("requests_total", 32, L("model", "mobilenet"), L("outcome", "ok"))
	e.Int("requests_total", 2, L("model", "mobilenet"), L("outcome", "error"))
	e.Float("queue_depth", 3, L("model", "mobilenet"))
	return e
}

// TestRenderLegacyFormat pins the legacy flat format byte for byte: one
// line per sample in insertion order, %q labels, %d ints, %.3f floats, no
// metadata. The serving /metrics default depends on this staying stable.
func TestRenderLegacyFormat(t *testing.T) {
	got := buildTestExposition().RenderLegacy()
	want := `requests_total{model="mobilenet",outcome="ok"} 32
requests_total{model="mobilenet",outcome="error"} 2
queue_depth{model="mobilenet"} 3.000
`
	if got != want {
		t.Errorf("RenderLegacy:\n%q\nwant:\n%q", got, want)
	}
}

// TestRenderOpenMetricsRoundTrip checks the OM renderer's output against
// the strict parser: families contiguous, HELP before TYPE before samples,
// counter family names stripped of _total, terminated by # EOF.
func TestRenderOpenMetricsRoundTrip(t *testing.T) {
	text := buildTestExposition().RenderOpenMetrics()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("output does not end with # EOF:\n%s", text)
	}
	p, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("renderer output rejected by strict parser: %v\n%s", err, text)
	}
	fam := p.Family("requests")
	if fam == nil {
		t.Fatalf("counter family %q missing (got %+v)", "requests", p.Families)
	}
	if fam.Type != TypeCounter || fam.Help != "Requests served." {
		t.Errorf("requests family metadata: %+v", fam)
	}
	if v, ok := p.Value("requests_total", map[string]string{"model": "mobilenet", "outcome": "ok"}); !ok || v != 32 {
		t.Errorf("requests_total ok = %v, %v", v, ok)
	}
	if v, ok := p.Value("queue_depth", map[string]string{"model": "mobilenet"}); !ok || v != 3 {
		t.Errorf("queue_depth = %v, %v", v, ok)
	}
	// HELP must come before TYPE for each family.
	helpIdx := strings.Index(text, "# HELP requests ")
	typeIdx := strings.Index(text, "# TYPE requests ")
	if helpIdx < 0 || typeIdx < 0 || helpIdx > typeIdx {
		t.Errorf("HELP/TYPE ordering wrong:\n%s", text)
	}
}

// TestOMLabelEscapingRoundTrip renders hostile label values through the OM
// renderer and reads them back through the strict parser.
func TestOMLabelEscapingRoundTrip(t *testing.T) {
	hostile := `quote " backslash \ newline
tab	end`
	e := NewExposition()
	e.Family("hostile_total", TypeCounter, `help with "quotes" and \ slashes
and a newline`)
	e.Int("hostile_total", 1, L("path", hostile))
	text := e.RenderOpenMetrics()
	p, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	samples := p.Samples("hostile_total")
	if len(samples) != 1 {
		t.Fatalf("got %d samples", len(samples))
	}
	if got := samples[0].Label("path"); got != hostile {
		t.Errorf("label round-trip:\ngot  %q\nwant %q", got, hostile)
	}
}

// TestParseExpositionRejects feeds the strict parser malformed expositions
// that a lenient line-splitter would accept.
func TestParseExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"missing EOF", "# TYPE a gauge\na 1\n"},
		{"content after EOF", "# TYPE a gauge\na 1\n# EOF\na 2\n"},
		{"blank interior line", "# TYPE a gauge\n\na 1\n# EOF\n"},
		{"HELP after samples", "# TYPE a gauge\na 1\n# HELP a text\n# EOF\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n"},
		{"duplicate HELP", "# HELP a x\n# HELP a y\n# TYPE a gauge\na 1\n# EOF\n"},
		{"non-contiguous family", "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na 2\n# EOF\n"},
		{"reopened metadata", "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\n# TYPE a gauge\n# EOF\n"},
		{"bad escape", "# TYPE a gauge\na{l=\"x\\y\"} 1\n# EOF\n"},
		{"dangling escape", "# TYPE a gauge\na{l=\"x\\\n# EOF\n"},
		{"unquoted label value", "# TYPE a gauge\na{l=x} 1\n# EOF\n"},
		{"duplicate label", "# TYPE a gauge\na{l=\"x\",l=\"y\"} 1\n# EOF\n"},
		{"invalid metric name", "# TYPE a gauge\n9a 1\n# EOF\n"},
		{"missing value", "# TYPE a gauge\na{l=\"x\"}\n# EOF\n"},
		{"non-numeric value", "# TYPE a gauge\na one\n# EOF\n"},
		{"unknown type", "# TYPE a histogram\na 1\n# EOF\n"},
		{"unknown metadata", "# FOO a bar\na 1\n# EOF\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition(tc.text); err == nil {
			t.Errorf("%s: accepted malformed exposition:\n%s", tc.name, tc.text)
		}
	}
}

// TestParseExpositionCounterSuffix checks the counter naming convention:
// inside a counter family "a", samples must be named a_total or a_created;
// a differently-named sample opens its own untyped family instead.
func TestParseExpositionCounterSuffix(t *testing.T) {
	p, err := ParseExposition("# TYPE a counter\na_total 5\na_created 1\n# EOF\n")
	if err != nil {
		t.Fatalf("valid counter family rejected: %v", err)
	}
	fam := p.Family("a")
	if fam == nil || len(fam.Samples) != 2 {
		t.Fatalf("counter family: %+v", p.Families)
	}
	// A bare "a" sample does not belong to counter family "a" — it opens a
	// second family also named "a", which the contiguity check rejects.
	if _, err := ParseExposition("# TYPE a counter\na_total 5\na 1\n# EOF\n"); err == nil {
		t.Error("bare sample inside counter family accepted")
	}
}

// TestCounterMonotonicity simulates two consecutive scrapes of a live
// exposition and checks every counter sample moved monotonically — the
// property the tfjs-profile live view's QPS-from-deltas math relies on.
func TestCounterMonotonicity(t *testing.T) {
	render := func(requests, errors int64) *Parsed {
		e := NewExposition()
		e.Family("requests_total", TypeCounter, "Requests served.")
		e.Family("queue_depth", TypeGauge, "Requests waiting.")
		e.Int("requests_total", requests, L("model", "m"), L("outcome", "ok"))
		e.Int("requests_total", errors, L("model", "m"), L("outcome", "error"))
		e.Float("queue_depth", float64(requests%7), L("model", "m"))
		p, err := ParseExposition(e.RenderOpenMetrics())
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return p
	}
	first := render(10, 1)
	second := render(42, 3)
	for _, fam := range first.Families {
		if fam.Type != TypeCounter {
			continue
		}
		for _, s := range fam.Samples {
			now, ok := second.Value(s.Name, s.Labels)
			if !ok {
				t.Errorf("counter %s%v disappeared between scrapes", s.Name, s.Labels)
				continue
			}
			if now < s.Value {
				t.Errorf("counter %s%v went backwards: %v -> %v", s.Name, s.Labels, s.Value, now)
			}
		}
	}
}

// TestFamilyOMRenameCollision reproduces the serving_kernel_time_ms shape:
// a counter x_total plus a gauge legacy-named x. After _total stripping
// both would claim OM family "x" — illegal, and the strict parser rejects
// the result. FamilyOM renames the gauge in the OM rendering only, so the
// legacy bytes stay put while the OM output parses.
func TestFamilyOMRenameCollision(t *testing.T) {
	e := NewExposition()
	e.Family("x_total", TypeCounter, "Cumulative x.")
	e.FamilyOM("x", "x_window", TypeGauge, "Recent-window x quantiles.")
	e.Int("x_total", 7, L("k", "a"))
	e.Float("x", 1.5, L("k", "a"), L("quantile", "0.5"))

	legacy := e.RenderLegacy()
	wantLegacy := "x_total{k=\"a\"} 7\nx{k=\"a\",quantile=\"0.5\"} 1.500\n"
	if legacy != wantLegacy {
		t.Errorf("RenderLegacy:\n%q\nwant:\n%q", legacy, wantLegacy)
	}

	text := e.RenderOpenMetrics()
	p, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("OM output with renamed gauge rejected: %v\n%s", err, text)
	}
	if fam := p.Family("x"); fam == nil || fam.Type != TypeCounter {
		t.Errorf("counter family x: %+v", fam)
	}
	if fam := p.Family("x_window"); fam == nil || fam.Type != TypeGauge {
		t.Errorf("renamed gauge family x_window: %+v", fam)
	}
	if v, ok := p.Value("x_window", map[string]string{"quantile": "0.5"}); !ok || v != 1.5 {
		t.Errorf("x_window sample = %v, %v", v, ok)
	}
	if _, ok := p.Value("x", nil); ok {
		t.Errorf("bare x sample leaked into OM output:\n%s", text)
	}
}
