package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestRequestFlowTraceEvents verifies the fan-in rendering: a request
// event opens a Chrome flow (ph "s") on its track, its execute stage
// closes it (ph "f", bp "e") on the batch track, both share the flow id,
// and the whole trace still validates against the schema.
func TestRequestFlowTraceEvents(t *testing.T) {
	r := NewRecorder(0)
	now := time.Now()
	r.Observe(Event{Kind: KindBatch, Name: "batch", Span: "m", FlowID: 99, Count: 2,
		Start: now, DurMS: 4})
	for _, flow := range []uint64{7, 8} {
		r.Observe(Event{Kind: KindStage, Name: "execute", Span: "m", Trace: "req-x",
			FlowID: flow, Start: now, DurMS: 4})
		r.Observe(Event{Kind: KindRequest, Name: "request", Span: "m", Trace: "req-x",
			FlowID: flow, Start: now.Add(-time.Millisecond), DurMS: 6})
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("flow trace fails schema validation: %v", err)
	}

	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int            `json:"tid"`
			ID    string         `json:"id"`
			BP    string         `json:"bp"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	starts := map[string]bool{}
	finishes := map[string]bool{}
	batchSlices := 0
	for _, te := range trace.TraceEvents {
		switch te.Phase {
		case "s":
			starts[te.ID] = true
		case "f":
			finishes[te.ID] = true
			if te.BP != "e" {
				t.Errorf("flow finish %q has bp %q, want \"e\" (bind to enclosing slice)", te.ID, te.BP)
			}
			if te.TID != tidBatches {
				t.Errorf("flow finish %q on tid %d, want batch track %d", te.ID, te.TID, tidBatches)
			}
		case "X":
			if te.Name == "batch" {
				batchSlices++
				if got := te.Args["batch_size"]; got != float64(2) {
					t.Errorf("batch slice batch_size = %v, want 2", got)
				}
			}
		}
	}
	if len(starts) != 2 || len(finishes) != 2 {
		t.Fatalf("flow starts/finishes = %d/%d ids, want 2/2", len(starts), len(finishes))
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow %q started but never finished", id)
		}
	}
	if batchSlices != 1 {
		t.Fatalf("batch slices = %d, want 1", batchSlices)
	}
}

// TestRequestWithoutFlowStaysPlain checks that untraced request/stage
// events (flow id 0 — hub observed but request arrived before tagging)
// render as ordinary slices with no dangling flow events.
func TestRequestWithoutFlowStaysPlain(t *testing.T) {
	r := NewRecorder(0)
	r.Observe(Event{Kind: KindRequest, Name: "request", Start: time.Now(), DurMS: 1})
	r.Observe(Event{Kind: KindStage, Name: "execute", Start: time.Now(), DurMS: 1})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"ph":"s"`)) || bytes.Contains(buf.Bytes(), []byte(`"ph":"f"`)) {
		t.Fatalf("flow events emitted for flow id 0:\n%s", buf.String())
	}
}

// TestHubConcurrentSpansAndObservers is the -race stress for the span
// stack: goroutines open and close nested spans and emit events while
// others register and unregister observers mid-stream. The assertions
// are minimal — the value of the test is the race detector over the
// copy-on-write observer list and the atomic span stack.
func TestHubConcurrentSpansAndObservers(t *testing.T) {
	h := NewHub()
	stop := make(chan struct{})
	var churners, emitters sync.WaitGroup

	// Observer churn: register/unregister in a tight loop until the
	// emitters finish.
	for i := 0; i < 4; i++ {
		churners.Add(1)
		go func() {
			defer churners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				remove := h.Register(ObserverFunc(func(ev Event) {
					_ = ev.Span // read the attributed span
				}))
				remove()
			}
		}()
	}
	// One span writer (the contract: model executions serialize, so there
	// is a single BeginSpan/end caller at a time) racing against...
	emitters.Add(1)
	go func() {
		defer emitters.Done()
		for j := 0; j < 500; j++ {
			end := h.BeginSpan("outer")
			inner := h.BeginSpan("inner")
			h.Emit(Event{Kind: KindKernel, Name: "K", Span: h.CurrentSpan()})
			inner()
			h.Emit(Event{Kind: KindStage, Name: "execute", Span: h.CurrentSpan()})
			end()
		}
	}()
	// ...concurrent emitters on other goroutines, which read the span
	// pointer while the writer swaps it.
	for i := 0; i < 3; i++ {
		emitters.Add(1)
		go func() {
			defer emitters.Done()
			for j := 0; j < 500; j++ {
				h.Emit(Event{Kind: KindRequest, Name: "request", Span: h.CurrentSpan(), FlowID: uint64(j)})
			}
		}()
	}
	emitters.Wait()
	close(stop)
	churners.Wait()
	if got := h.CurrentSpan(); got != "" {
		t.Fatalf("span stack not empty after all spans closed: %q", got)
	}
}
