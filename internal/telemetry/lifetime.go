package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// siteFrames is how many call-stack frames a sampled allocation retains:
// enough to climb out of the engine internals and show a few levels of the
// user's own call chain.
const siteFrames = 24

// finalizedCap bounds the retained finalizer-reclaimed records; beyond it
// only the counter grows.
const finalizedCap = 256

// allocRecord is one live (or finalizer-reclaimed) tensor handle.
type allocRecord struct {
	id    int64
	bytes int64
	scope string
	span  string
	pcs   []uintptr // nil when this allocation was not sampled
	seq   int64
}

// LifetimeTracker attributes tensor handles to the code that created them:
// the engine calls OnAlloc/OnDispose/OnFinalize for every tensor handle
// while a tracker is installed (Engine.TrackLifetimes), and the tracker
// captures a sampled runtime.Callers stack, the enclosing tidy scope and
// the open model span per allocation. Report renders the survivors as a
// LeakReport: handles that were allocated but never disposed, grouped by
// allocation site and by scope, plus the handles the garbage collector had
// to reclaim through a finalizer — tensors the user leaked but the Node.js
// memory model (§4.2) silently cleaned up.
type LifetimeTracker struct {
	// sampleEvery captures a call stack on every Nth allocation; 1 samples
	// every allocation (the LeakCheck setting), larger values bound the
	// runtime.Callers cost for always-on production tracking.
	sampleEvery int64

	mu        sync.Mutex
	live      map[int64]*allocRecord
	finalized []*allocRecord
	allocs    int64
	disposes  int64
	nfinal    int64
}

// NewLifetimeTracker returns a tracker capturing an allocation-site stack
// on every sampleEvery-th allocation (values < 1 sample every allocation).
func NewLifetimeTracker(sampleEvery int) *LifetimeTracker {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &LifetimeTracker{
		sampleEvery: int64(sampleEvery),
		live:        map[int64]*allocRecord{},
	}
}

// OnAlloc records one tensor-handle allocation, capturing a call stack on
// sampled allocations. scope and span are the enclosing tidy scope and
// open model span at allocation time.
func (l *LifetimeTracker) OnAlloc(id, bytes int64, scope, span string) {
	rec := &allocRecord{id: id, bytes: bytes, scope: scope, span: span}
	l.mu.Lock()
	l.allocs++
	rec.seq = l.allocs
	sampled := l.allocs%l.sampleEvery == 0
	l.live[id] = rec
	l.mu.Unlock()
	if sampled {
		// Captured outside the lock: runtime.Callers is the expensive part
		// and needs no tracker state. Skip runtime.Callers + OnAlloc; the
		// engine frames above are pruned symbolically at report time.
		pcs := make([]uintptr, siteFrames)
		n := runtime.Callers(2, pcs)
		rec.pcs = pcs[:n]
	}
}

// OnDispose records one tensor-handle disposal.
func (l *LifetimeTracker) OnDispose(id int64) {
	l.mu.Lock()
	if _, ok := l.live[id]; ok {
		l.disposes++
		delete(l.live, id)
	}
	l.mu.Unlock()
}

// OnFinalize records that the garbage collector reclaimed an undisposed
// tensor through its finalizer — a leak the user never cleaned up. The
// finalizer still disposes the tensor afterwards, so the handle leaves the
// live set through the ordinary OnDispose path.
func (l *LifetimeTracker) OnFinalize(id int64) {
	l.mu.Lock()
	if rec, ok := l.live[id]; ok {
		l.nfinal++
		if len(l.finalized) < finalizedCap {
			l.finalized = append(l.finalized, rec)
		}
	}
	l.mu.Unlock()
}

// Counts reports total allocations, disposals and finalizer reclaims seen.
func (l *LifetimeTracker) Counts() (allocs, disposes, finalized int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.allocs, l.disposes, l.nfinal
}

// SiteStat aggregates the live tensors created at one allocation site.
type SiteStat struct {
	// Site is the resolved user-level allocation site: "func (file:line)"
	// of the first frame outside the engine and telemetry internals.
	Site string `json:"site"`
	// Frames is the retained call chain, innermost first.
	Frames []string `json:"frames,omitempty"`
	// Tensors is the number of live handles allocated here.
	Tensors int `json:"tensors"`
	// Bytes is their combined logical payload.
	Bytes int64 `json:"bytes"`
}

// ScopeStat aggregates the live tensors that survived one tidy scope (or
// were created outside any scope).
type ScopeStat struct {
	Scope   string `json:"scope"`
	Tensors int    `json:"tensors"`
	Bytes   int64  `json:"bytes"`
}

// DeviceMemory is the device-side memory picture attached to a LeakReport
// by the caller (the tf facade or the serving debug endpoint), since the
// tracker itself never talks to a backend: texture-recycler occupancy and
// paging pressure from the webgl/glsim layer.
type DeviceMemory struct {
	Backend          string `json:"backend"`
	NumTextures      int    `json:"num_textures"`
	TextureBytes     int64  `json:"texture_bytes"`
	FreeTextures     int    `json:"free_textures"`
	PagedBytes       int64  `json:"paged_bytes"`
	PageOuts         int64  `json:"page_outs"`
	PageIns          int64  `json:"page_ins"`
	PeakTextureBytes int64  `json:"peak_texture_bytes,omitempty"`
}

// LeakReport is the tracker's verdict: every tensor handle allocated while
// tracking that is still live, attributed to allocation sites and tidy
// scopes, plus the handles only a finalizer saved.
type LeakReport struct {
	// LiveTensors / LiveBytes count handles allocated under tracking and
	// not yet disposed.
	LiveTensors int   `json:"live_tensors"`
	LiveBytes   int64 `json:"live_bytes"`
	// Allocs / Disposes / Finalized are the tracker's running totals.
	Allocs    int64 `json:"allocs"`
	Disposes  int64 `json:"disposes"`
	Finalized int64 `json:"finalized"`
	// Sites ranks allocation sites by live bytes, descending.
	Sites []SiteStat `json:"sites,omitempty"`
	// Scopes ranks tidy scopes by surviving bytes, descending.
	Scopes []ScopeStat `json:"scopes,omitempty"`
	// FinalizedSites are the sites whose tensors the garbage collector had
	// to reclaim (Node.js-style finalization, §4.2).
	FinalizedSites []SiteStat `json:"finalized_sites,omitempty"`
	// Device is the backend memory picture, filled by the caller.
	Device *DeviceMemory `json:"device,omitempty"`
}

// enginePrefixes name the packages pruned from the top of captured stacks
// when resolving the user-level allocation site: the allocation plumbing
// itself is never the interesting frame.
var enginePrefixes = []string{
	"repro/internal/core.",
	"repro/internal/telemetry.",
	"repro/internal/tensor.",
	"repro/internal/ops.",
	"repro/tf.",
	"runtime.",
}

func engineFrame(fn string) bool {
	for _, p := range enginePrefixes {
		if strings.HasPrefix(fn, p) {
			return true
		}
	}
	return false
}

// resolveSite symbolizes a captured stack: the site label is the first
// frame outside the engine internals, and Frames keeps the chain from
// there down for context.
func resolveSite(pcs []uintptr) (site string, chain []string) {
	if len(pcs) == 0 {
		return "(unsampled)", nil
	}
	frames := runtime.CallersFrames(pcs)
	for {
		f, more := frames.Next()
		if f.Function != "" && (site != "" || !engineFrame(f.Function)) {
			label := fmt.Sprintf("%s (%s:%d)", f.Function, f.File, f.Line)
			if site == "" {
				site = label
			}
			chain = append(chain, label)
		}
		if !more || len(chain) >= 8 {
			break
		}
	}
	if site == "" {
		site = "(engine-internal)"
	}
	return site, chain
}

// aggregateSites groups records by resolved allocation site, ranked by
// bytes descending.
func aggregateSites(recs []*allocRecord) []SiteStat {
	bySite := map[string]*SiteStat{}
	var order []string
	for _, rec := range recs {
		site, chain := resolveSite(rec.pcs)
		a, ok := bySite[site]
		if !ok {
			a = &SiteStat{Site: site, Frames: chain}
			bySite[site] = a
			order = append(order, site)
		}
		a.Tensors++
		a.Bytes += rec.bytes
	}
	out := make([]SiteStat, 0, len(order))
	for _, site := range order {
		out = append(out, *bySite[site])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Report snapshots the tracker into a LeakReport.
func (l *LifetimeTracker) Report() *LeakReport {
	l.mu.Lock()
	live := make([]*allocRecord, 0, len(l.live))
	for _, rec := range l.live {
		live = append(live, rec)
	}
	finalized := make([]*allocRecord, len(l.finalized))
	copy(finalized, l.finalized)
	rep := &LeakReport{
		Allocs:    l.allocs,
		Disposes:  l.disposes,
		Finalized: l.nfinal,
	}
	l.mu.Unlock()

	// Stable order (allocation order) so reports are deterministic.
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	rep.LiveTensors = len(live)
	scopes := map[string]*ScopeStat{}
	var scopeOrder []string
	for _, rec := range live {
		rep.LiveBytes += rec.bytes
		scope := rec.scope
		if scope == "" {
			scope = "(no scope)"
		}
		if rec.span != "" {
			scope = scope + " @ " + rec.span
		}
		s, ok := scopes[scope]
		if !ok {
			s = &ScopeStat{Scope: scope}
			scopes[scope] = s
			scopeOrder = append(scopeOrder, scope)
		}
		s.Tensors++
		s.Bytes += rec.bytes
	}
	rep.Sites = aggregateSites(live)
	rep.FinalizedSites = aggregateSites(finalized)
	for _, scope := range scopeOrder {
		rep.Scopes = append(rep.Scopes, *scopes[scope])
	}
	sort.Slice(rep.Scopes, func(i, j int) bool {
		if rep.Scopes[i].Bytes != rep.Scopes[j].Bytes {
			return rep.Scopes[i].Bytes > rep.Scopes[j].Bytes
		}
		return rep.Scopes[i].Scope < rep.Scopes[j].Scope
	})
	return rep
}

// String renders the report as the human-readable text tfjs-profile -leaks
// prints.
func (r *LeakReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "leak report: %d live tensor(s), %.2f KiB live (%d allocs, %d disposes, %d finalizer-reclaimed)\n",
		r.LiveTensors, float64(r.LiveBytes)/1024, r.Allocs, r.Disposes, r.Finalized)
	if len(r.Sites) > 0 {
		b.WriteString("\ntop allocation sites by live bytes:\n")
		for i, s := range r.Sites {
			if i >= 10 {
				fmt.Fprintf(&b, "  ... and %d more site(s)\n", len(r.Sites)-i)
				break
			}
			fmt.Fprintf(&b, "  %8d B  %4d tensor(s)  %s\n", s.Bytes, s.Tensors, s.Site)
		}
	}
	if len(r.Scopes) > 0 {
		b.WriteString("\nsurvivors by tidy scope:\n")
		for _, s := range r.Scopes {
			fmt.Fprintf(&b, "  %8d B  %4d tensor(s)  %s\n", s.Bytes, s.Tensors, s.Scope)
		}
	}
	if len(r.FinalizedSites) > 0 {
		b.WriteString("\nfinalizer-reclaimed (leaked, GC cleaned up):\n")
		for _, s := range r.FinalizedSites {
			fmt.Fprintf(&b, "  %8d B  %4d tensor(s)  %s\n", s.Bytes, s.Tensors, s.Site)
		}
	}
	if r.Device != nil {
		d := r.Device
		fmt.Fprintf(&b, "\ndevice (%s): %d texture(s) / %.2f MiB resident, %d recycled free, %.2f MiB paged out (%d out / %d in)\n",
			d.Backend, d.NumTextures, float64(d.TextureBytes)/(1<<20),
			d.FreeTextures, float64(d.PagedBytes)/(1<<20), d.PageOuts, d.PageIns)
	}
	return b.String()
}
