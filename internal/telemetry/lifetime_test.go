package telemetry_test

import (
	"repro/internal/telemetry"
	"strings"
	"testing"
)

// allocate is a helper whose frame must appear as the resolved allocation
// site: it lives in this test file, outside the pruned engine packages.
func allocate(lt *telemetry.LifetimeTracker, id, bytes int64, scope string) {
	lt.OnAlloc(id, bytes, scope, "")
}

// TestLifetimeTrackerLeakAttribution is the tracker half of the leak-check
// acceptance: an allocated-and-never-disposed handle must be reported with
// a resolvable allocation site, and a disposed one must not appear.
func TestLifetimeTrackerLeakAttribution(t *testing.T) {
	lt := telemetry.NewLifetimeTracker(1)
	allocate(lt, 1, 100, "tidy")
	allocate(lt, 2, 40, "")
	lt.OnDispose(1)

	rep := lt.Report()
	if rep.LiveTensors != 1 || rep.LiveBytes != 40 {
		t.Fatalf("live = %d tensors / %d bytes, want 1 / 40", rep.LiveTensors, rep.LiveBytes)
	}
	if rep.Allocs != 2 || rep.Disposes != 1 {
		t.Fatalf("counts = %d allocs / %d disposes, want 2 / 1", rep.Allocs, rep.Disposes)
	}
	if len(rep.Sites) != 1 {
		t.Fatalf("sites = %d, want exactly 1: %+v", len(rep.Sites), rep.Sites)
	}
	site := rep.Sites[0]
	if !strings.Contains(site.Site, "lifetime_test.go") {
		t.Errorf("site %q does not resolve to this test file", site.Site)
	}
	if !strings.Contains(site.Site, "allocate") {
		t.Errorf("site %q does not name the allocating function", site.Site)
	}
	if site.Tensors != 1 || site.Bytes != 40 {
		t.Errorf("site aggregates %d tensors / %d bytes, want 1 / 40", site.Tensors, site.Bytes)
	}
	// The disposed tensor's scope ("tidy") must not survive into the report.
	for _, s := range rep.Scopes {
		if strings.HasPrefix(s.Scope, "tidy") {
			t.Errorf("disposed tensor's scope leaked into the report: %+v", s)
		}
	}
	if len(rep.Scopes) != 1 || rep.Scopes[0].Scope != "(no scope)" {
		t.Errorf("scopes = %+v, want exactly [(no scope)]", rep.Scopes)
	}
}

// TestLifetimeTrackerFinalized verifies the GC-reclaim path: OnFinalize
// moves a still-live record into the finalized set, and the subsequent
// OnDispose (the finalizer disposes after reporting) clears it from live.
func TestLifetimeTrackerFinalized(t *testing.T) {
	lt := telemetry.NewLifetimeTracker(1)
	allocate(lt, 7, 64, "")
	lt.OnFinalize(7)
	lt.OnDispose(7)

	rep := lt.Report()
	if rep.LiveTensors != 0 {
		t.Fatalf("live = %d, want 0 after finalize+dispose", rep.LiveTensors)
	}
	if rep.Finalized != 1 {
		t.Fatalf("finalized = %d, want 1", rep.Finalized)
	}
	if len(rep.FinalizedSites) != 1 || !strings.Contains(rep.FinalizedSites[0].Site, "lifetime_test.go") {
		t.Fatalf("finalized sites = %+v, want one resolving to this file", rep.FinalizedSites)
	}
}

// TestLifetimeTrackerSampling checks that sampleEvery > 1 leaves the
// un-sampled allocations site-less but still counted.
func TestLifetimeTrackerSampling(t *testing.T) {
	lt := telemetry.NewLifetimeTracker(2)
	for i := int64(1); i <= 4; i++ {
		allocate(lt, i, 10, "")
	}
	rep := lt.Report()
	if rep.LiveTensors != 4 {
		t.Fatalf("live = %d, want 4", rep.LiveTensors)
	}
	var sampled, unsampled int
	for _, s := range rep.Sites {
		if s.Site == "(unsampled)" {
			unsampled += s.Tensors
		} else {
			sampled += s.Tensors
		}
	}
	if sampled != 2 || unsampled != 2 {
		t.Fatalf("sampled/unsampled = %d/%d, want 2/2 at sampleEvery=2: %+v", sampled, unsampled, rep.Sites)
	}
}

// TestLeakReportString smoke-tests the human rendering tfjs-profile
// -leaks prints.
func TestLeakReportString(t *testing.T) {
	lt := telemetry.NewLifetimeTracker(1)
	allocate(lt, 1, 2048, "predict")
	rep := lt.Report()
	rep.Device = &telemetry.DeviceMemory{Backend: "webgl", NumTextures: 3, TextureBytes: 1 << 20}
	out := rep.String()
	for _, want := range []string{"1 live tensor(s)", "lifetime_test.go", "predict", "webgl"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}
