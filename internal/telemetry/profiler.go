package telemetry

// The always-on continuous profiler: rolling measured-cost accounts for
// plan steps and kernels. The paper's §7 argues a deployed runtime needs
// continuous measurement; here the measurement closes the loop — the
// native backend feeds per-chunk timings into per-step CostAccounts and,
// under exec.CostModelMeasured, derives its parallelism grain from the
// observed ns/item instead of compile-time flop guesses, and the serving
// batcher's Retry-After model uses the measured execution cost instead of
// a hardcoded 50ms assumption.
//
// Everything here is engineered for the kernel hot path:
//   - one process-wide atomic gate (EnableProfiling) turns the whole layer
//     off for A/B overhead measurement;
//   - CostAccount's EWMA is a lock-free CAS on float bits, its totals are
//     plain atomics, and its streaming quantiles sit behind a TryLock that
//     is skipped (never waited on) under contention;
//   - the Profiler observer shards its kernel-name map and samples its own
//     overhead 1-in-64 so the self-measurement is itself cheap.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// profilingOff gates every measured-cost collection site. Inverted
// polarity so the zero value means "profiling on" — always-on by default,
// no init required.
var profilingOff atomic.Bool

// EnableProfiling turns the continuous profiler's collection on or off
// process-wide. It is on by default; `tfjs-bench overhead` flips it off
// for the profiler-off arm of the overhead budget measurement.
func EnableProfiling(on bool) { profilingOff.Store(!on) }

// ProfilingOn reports whether measured-cost collection is enabled — the
// single atomic load producers gate on.
func ProfilingOn() bool { return !profilingOff.Load() }

// ---------------------------------------------------------------------------
// P² streaming quantile estimation

// p2Quantile is the P² (piecewise-parabolic) streaming quantile estimator
// of Jain & Chlamtac (1985): five markers track one quantile of an
// unbounded stream in O(1) space and time per observation, no sample
// buffer. It backs CostAccount's p50/p95 — a sliding-window Distribution
// would cost a 512-float buffer per plan step per replica.
type p2Quantile struct {
	p    float64    // target quantile in (0,1)
	n    int        // observations seen
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
}

func newP2(p float64) p2Quantile {
	return p2Quantile{
		p:    p,
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc:  [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// observe folds one sample into the estimator.
func (e *p2Quantile) observe(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Find the cell k such that q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			q := e.parabolic(i, sign)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
	e.n++
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d (±1).
func (e *p2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback linear height prediction.
func (e *p2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// value returns the current quantile estimate (exact for n < 5).
func (e *p2Quantile) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(s)
		idx := int(e.p * float64(len(s)-1))
		return s[idx]
	}
	return e.q[2]
}

// ---------------------------------------------------------------------------
// CostAccount

// CostAccount is one rolling measured-cost account: the ns/item EWMA the
// backend's grain selection reads, plus totals and streaming p50/p95 for
// the exposition surfaces. It implements exec.CostObserver. The zero
// value is NOT ready; use NewCostAccount.
type CostAccount struct {
	// ewma holds math.Float64bits of the smoothed ns/item; 0 means "no
	// observations yet". Updated by CAS so concurrent chunk timings from
	// different pool workers never lose the account.
	ewma  atomic.Uint64
	count atomic.Int64 // ObserveCost calls
	items atomic.Int64 // total loop items timed
	ns    atomic.Int64 // total nanoseconds timed

	// qmu guards the quantile estimators. ObserveCost only TryLocks it —
	// under contention the sample is skipped (the totals above still
	// count it), so the hot path never blocks on a sibling chunk.
	qmu sync.Mutex
	p50 p2Quantile
	p95 p2Quantile
}

// ewmaShift is the EWMA smoothing factor as a right-shift: new values
// weigh 1/8. Small enough to ride out scheduling noise, large enough to
// track a model's cost drift within a few dozen steps.
const ewmaShift = 8

// NewCostAccount returns an empty account.
func NewCostAccount() *CostAccount {
	return &CostAccount{p50: newP2(0.50), p95: newP2(0.95)}
}

// ObserveCost implements exec.CostObserver: fold one timed run of items
// loop iterations taking ns nanoseconds into the account.
func (a *CostAccount) ObserveCost(ns int64, items int) {
	if items <= 0 {
		return
	}
	x := float64(ns) / float64(items)
	a.count.Add(1)
	a.items.Add(int64(items))
	a.ns.Add(ns)
	for {
		old := a.ewma.Load()
		var next float64
		if old == 0 {
			next = x
		} else {
			prev := math.Float64frombits(old)
			next = prev + (x-prev)/ewmaShift
		}
		if a.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	if a.qmu.TryLock() {
		a.p50.observe(x)
		a.p95.observe(x)
		a.qmu.Unlock()
	}
}

// NSPerItem implements exec.CostObserver: the smoothed measured cost per
// loop item in nanoseconds (0 until the first observation).
func (a *CostAccount) NSPerItem() float64 {
	return math.Float64frombits(a.ewma.Load())
}

// Count returns the number of timed runs folded in.
func (a *CostAccount) Count() int64 { return a.count.Load() }

// Items returns the total loop items timed.
func (a *CostAccount) Items() int64 { return a.items.Load() }

// TotalNS returns the total nanoseconds timed.
func (a *CostAccount) TotalNS() int64 { return a.ns.Load() }

// Quantiles returns the streaming p50/p95 of the observed ns/item samples.
func (a *CostAccount) Quantiles() (p50, p95 float64) {
	a.qmu.Lock()
	defer a.qmu.Unlock()
	return a.p50.value(), a.p95.value()
}

// ---------------------------------------------------------------------------
// Profiler

// profilerShards spreads the kernel-name map across independently locked
// shards, mirroring the trace recorder's sharding: concurrent replicas
// dispatching different kernels rarely contend.
const profilerShards = 8

// overheadSampleEvery is the self-overhead sampling rate: one in this
// many observed events is timed, so the profiler reports its own cost
// without paying a clock read per kernel.
const overheadSampleEvery = 64

type profilerShard struct {
	mu       sync.RWMutex
	accounts map[string]*CostAccount
}

// Profiler is the hub Observer behind the per-kernel measured-cost
// accounts: every kernel event with a known output element count feeds
// the kernel's CostAccount (wall ns per output element). It backs the
// telemetry_kernel_cost_* series on /metrics and the top-K table of
// tfjs-profile -top.
type Profiler struct {
	shards [profilerShards]profilerShard
	events atomic.Int64 // kernel events folded in

	// Self-overhead accounting: 1 in overheadSampleEvery observations is
	// timed end to end.
	seq             atomic.Uint64
	overheadNS      atomic.Int64
	overheadSamples atomic.Int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	p := &Profiler{}
	for i := range p.shards {
		p.shards[i].accounts = map[string]*CostAccount{}
	}
	return p
}

// shardOf hashes a kernel name onto a shard (FNV-1a).
func shardOf(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % profilerShards)
}

// Account returns the rolling cost account for one kernel name, creating
// it on first use.
func (p *Profiler) Account(name string) *CostAccount {
	s := &p.shards[shardOf(name)]
	s.mu.RLock()
	a := s.accounts[name]
	s.mu.RUnlock()
	if a != nil {
		return a
	}
	s.mu.Lock()
	a = s.accounts[name]
	if a == nil {
		a = NewCostAccount()
		s.accounts[name] = a
	}
	s.mu.Unlock()
	return a
}

// Observe implements Observer: kernel events with an output element count
// feed the kernel's cost account.
func (p *Profiler) Observe(ev Event) {
	if ev.Kind != KindKernel || ev.Elements <= 0 || !ProfilingOn() {
		return
	}
	sampled := p.seq.Add(1)%overheadSampleEvery == 0
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	ns := int64(ev.DurMS * float64(time.Millisecond))
	p.Account(ev.Name).ObserveCost(ns, int(ev.Elements))
	p.events.Add(1)
	if sampled {
		p.overheadNS.Add(time.Since(t0).Nanoseconds())
		p.overheadSamples.Add(1)
	}
}

// Events returns the number of kernel events folded in.
func (p *Profiler) Events() int64 { return p.events.Load() }

// Overhead returns the self-overhead sampling counters: how many
// observations were timed and their summed cost. The mean (ns/sample)
// estimates the profiler's per-event cost; the /metrics series exports
// both so the rate stays computable after scrapes.
func (p *Profiler) Overhead() (samples, totalNS int64) {
	return p.overheadSamples.Load(), p.overheadNS.Load()
}

// CostSummary is one kernel's measured-cost snapshot.
type CostSummary struct {
	Kernel    string  `json:"kernel"`
	Count     int64   `json:"count"`       // timed runs
	Items     int64   `json:"items"`       // output elements timed
	TotalNS   int64   `json:"total_ns"`    // summed wall nanoseconds
	NSPerItem float64 `json:"ns_per_item"` // EWMA
	P50       float64 `json:"p50_ns_item"` // streaming p50 of ns/item
	P95       float64 `json:"p95_ns_item"` // streaming p95 of ns/item
}

// Snapshot returns every kernel's cost summary, sorted by total measured
// time descending (ties by name, so the order is deterministic).
func (p *Profiler) Snapshot() []CostSummary {
	var out []CostSummary
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		for name, a := range s.accounts {
			p50, p95 := a.Quantiles()
			out = append(out, CostSummary{
				Kernel:    name,
				Count:     a.Count(),
				Items:     a.Items(),
				TotalNS:   a.TotalNS(),
				NSPerItem: a.NSPerItem(),
				P50:       p50,
				P95:       p95,
			})
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

// Top returns the k kernels with the highest total measured time.
func (p *Profiler) Top(k int) []CostSummary {
	all := p.Snapshot()
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

var _ Observer = (*Profiler)(nil)
