package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestP2QuantileVsSorted checks the streaming P² estimates against exact
// sorted-sample quantiles on a deterministic stream: the estimator has no
// buffer, so some error is expected, but it must land near the truth.
func TestP2QuantileVsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	samples := make([]float64, n)
	p50 := newP2(0.50)
	p95 := newP2(0.95)
	for i := range samples {
		// A right-skewed mixture, like real per-item kernel costs: mostly
		// cheap with an occasional expensive tail.
		v := rng.Float64() * 100
		if rng.Intn(10) == 0 {
			v += 500
		}
		samples[i] = v
		p50.observe(v)
		p95.observe(v)
	}
	sort.Float64s(samples)
	exact50 := samples[n/2]
	exact95 := samples[n*95/100]
	if got := p50.value(); math.Abs(got-exact50) > 0.1*exact50 {
		t.Errorf("p50 estimate %.2f, exact %.2f (>10%% off)", got, exact50)
	}
	if got := p95.value(); math.Abs(got-exact95) > 0.1*exact95 {
		t.Errorf("p95 estimate %.2f, exact %.2f (>10%% off)", got, exact95)
	}
}

// TestP2QuantileSmallStreams checks the exact-small-n path (n < 5 keeps
// raw samples) and the empty case.
func TestP2QuantileSmallStreams(t *testing.T) {
	e := newP2(0.5)
	if got := e.value(); got != 0 {
		t.Errorf("empty estimator: got %v, want 0", got)
	}
	e.observe(30)
	e.observe(10)
	e.observe(20)
	if got := e.value(); got != 20 {
		t.Errorf("median of {10,20,30}: got %v, want 20", got)
	}
}

// TestCostAccountEWMAConverges feeds a constant per-item cost and checks
// the EWMA settles on it, then shifts the cost and checks it tracks.
func TestCostAccountEWMAConverges(t *testing.T) {
	a := NewCostAccount()
	if a.NSPerItem() != 0 {
		t.Fatalf("fresh account NSPerItem = %v, want 0", a.NSPerItem())
	}
	for i := 0; i < 100; i++ {
		a.ObserveCost(1000, 10) // 100 ns/item
	}
	if got := a.NSPerItem(); math.Abs(got-100) > 1 {
		t.Errorf("EWMA after constant 100 ns/item: got %.2f", got)
	}
	// Cost doubles: within a few hundred observations the EWMA (1/8 new
	// weight) must have settled on the new level.
	for i := 0; i < 2000; i++ {
		a.ObserveCost(2000, 10) // 200 ns/item
	}
	if got := a.NSPerItem(); math.Abs(got-200) > 10 {
		t.Errorf("EWMA after shift to 200 ns/item: got %.2f", got)
	}
	if a.Count() != 2100 || a.Items() != 21000 || a.TotalNS() != 100*1000+2000*2000 {
		t.Errorf("totals: count=%d items=%d ns=%d", a.Count(), a.Items(), a.TotalNS())
	}
	p50, p95 := a.Quantiles()
	if p50 < 100 || p50 > 200 || p95 < p50 {
		t.Errorf("quantiles p50=%v p95=%v out of range", p50, p95)
	}
	// Non-positive item counts are ignored, never divide by zero.
	a.ObserveCost(500, 0)
	a.ObserveCost(500, -3)
	if a.Count() != 2100 {
		t.Errorf("non-positive items changed count: %d", a.Count())
	}
}

// TestCostAccountConcurrent hammers one account from many goroutines while
// readers poll the EWMA and quantiles — run under -race this is the
// lock-freedom proof for the hot path; the totals check catches lost CAS
// updates.
func TestCostAccountConcurrent(t *testing.T) {
	a := NewCostAccount()
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = a.NSPerItem()
					_, _ = a.Quantiles()
					_ = a.Count()
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				a.ObserveCost(int64(100+i%7), 1+i%3)
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if got := a.Count(); got != writers*perWriter {
		t.Errorf("lost observations: count=%d want %d", got, writers*perWriter)
	}
	if a.NSPerItem() <= 0 {
		t.Errorf("EWMA = %v after %d observations", a.NSPerItem(), a.Count())
	}
}

// TestDistributionConcurrentQuantiles races quantile reads against writes:
// Quantiles must copy the window under the lock, so a concurrent Observe
// can never hand sort.Float64s a mutating slice. Run with -race.
func TestDistributionConcurrentQuantiles(t *testing.T) {
	d := NewDistribution()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					qs := d.Quantiles(0.5, 0.95, 0.99)
					if qs[0] > qs[2] {
						t.Errorf("p50 %v > p99 %v", qs[0], qs[2])
						return
					}
					_ = d.Count()
					_ = d.Total()
				}
			}
		}()
	}
	// Enough writes to wrap the sliding window several times over.
	const writes = 4 * distributionWindow
	var writerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		writerWG.Add(1)
		go func(seed int) {
			defer writerWG.Done()
			for i := 0; i < writes; i++ {
				d.Observe(float64(seed*writes + i))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if got := d.Count(); got != 4*writes {
		t.Errorf("count = %d, want %d", got, 4*writes)
	}
}

// TestProfilerObserve checks the event filter and the EnableProfiling
// gate: only kernel events with a positive element count feed accounts,
// and nothing is recorded while profiling is off.
func TestProfilerObserve(t *testing.T) {
	p := NewProfiler()
	p.Observe(Event{Kind: KindKernel, Name: "MatMul", DurMS: 1, Elements: 1000})
	p.Observe(Event{Kind: KindKernel, Name: "MatMul", DurMS: 3, Elements: 1000})
	p.Observe(Event{Kind: KindKernel, Name: "Relu", DurMS: 0.5, Elements: 500})
	p.Observe(Event{Kind: KindUpload, Name: "upload", DurMS: 9, Elements: 100}) // wrong kind
	p.Observe(Event{Kind: KindKernel, Name: "NoElems", DurMS: 9})               // no element count
	if got := p.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}

	EnableProfiling(false)
	p.Observe(Event{Kind: KindKernel, Name: "MatMul", DurMS: 1, Elements: 1000})
	EnableProfiling(true)
	p.Observe(Event{Kind: KindKernel, Name: "MatMul", DurMS: 1, Elements: 1000})
	if got := p.Events(); got != 4 {
		t.Fatalf("Events() = %d after gate cycle, want 4", got)
	}

	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() has %d kernels, want 2: %+v", len(snap), snap)
	}
	// MatMul accumulated 5ms over 3000 elements, Relu 0.5ms over 500 —
	// Snapshot sorts by total time descending.
	if snap[0].Kernel != "MatMul" || snap[1].Kernel != "Relu" {
		t.Errorf("snapshot order: %q, %q", snap[0].Kernel, snap[1].Kernel)
	}
	if snap[0].Count != 3 || snap[0].Items != 3000 {
		t.Errorf("MatMul summary: %+v", snap[0])
	}
	if snap[0].NSPerItem <= 0 {
		t.Errorf("MatMul NSPerItem = %v", snap[0].NSPerItem)
	}
	if top := p.Top(1); len(top) != 1 || top[0].Kernel != "MatMul" {
		t.Errorf("Top(1) = %+v", top)
	}
}

// TestProfilerOverheadSampling drives enough events through Observe that
// the 1-in-overheadSampleEvery self-timing must have triggered.
func TestProfilerOverheadSampling(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 3*overheadSampleEvery; i++ {
		p.Observe(Event{Kind: KindKernel, Name: "K", DurMS: 0.1, Elements: 10})
	}
	samples, totalNS := p.Overhead()
	if samples != 3 {
		t.Errorf("overhead samples = %d, want 3", samples)
	}
	if totalNS < 0 {
		t.Errorf("overhead totalNS = %d", totalNS)
	}
}

// TestRecorderDroppedByShard overflows a tiny ring and checks the
// per-shard overwrite counters: each sums into Dropped, and resetting
// clears them.
func TestRecorderDroppedByShard(t *testing.T) {
	r := NewRecorder(recorderShards) // one slot per shard
	const events = 5 * recorderShards
	for i := 0; i < events; i++ {
		r.Observe(Event{Kind: KindKernel, Name: "K"})
	}
	byShard := r.DroppedByShard()
	if len(byShard) != recorderShards {
		t.Fatalf("DroppedByShard has %d entries, want %d", len(byShard), recorderShards)
	}
	var sum int64
	for _, n := range byShard {
		sum += n
	}
	if sum != r.Dropped() {
		t.Errorf("shard drops sum to %d, Dropped() = %d", sum, r.Dropped())
	}
	if want := int64(events - recorderShards); sum != want {
		t.Errorf("dropped %d events, want %d", sum, want)
	}
	r.Reset()
	if r.Dropped() != 0 {
		t.Errorf("Dropped() = %d after Reset", r.Dropped())
	}
}
