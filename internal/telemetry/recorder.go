package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// recorderShards spreads the trace ring across independently locked
// shards so concurrent emitters (serving workers, async readbacks, the
// device goroutine) rarely contend on the same lock. Each shard's critical
// section is one slot write.
const recorderShards = 8

// DefaultRecorderCapacity is the trace ring size when NewRecorder is
// given a non-positive capacity: enough for several seconds of MobileNet
// inference at full kernel rate.
const DefaultRecorderCapacity = 16384

// Recorder is the lock-light ring-buffer trace recorder: an Observer that
// keeps the last N events and renders them as Chrome trace-event JSON
// loadable in chrome://tracing (or perfetto). Old events are overwritten,
// so memory is bounded regardless of how long tracing stays enabled.
type Recorder struct {
	shards [recorderShards]recorderShard
	cursor atomic.Uint64 // round-robins emissions across shards
}

type recorderShard struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events written to this shard
	dropped int64  // events overwritten by this shard's ring wrapping
}

// NewRecorder returns a recorder keeping at most capacity events
// (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	per := (capacity + recorderShards - 1) / recorderShards
	if per < 1 {
		per = 1
	}
	r := &Recorder{}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, 0, per)
	}
	return r
}

// Observe implements Observer: append the event to one shard's ring.
func (r *Recorder) Observe(ev Event) {
	s := &r.shards[r.cursor.Add(1)%recorderShards]
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.next%uint64(cap(s.buf))] = ev
		s.dropped++
	}
	s.next++
	s.mu.Unlock()
}

// Dropped reports how many events were overwritten by ring wraparound,
// summed across shards. A nonzero count means a downloaded trace is
// truncated: the ring kept only the most recent events.
func (r *Recorder) Dropped() int64 {
	var n int64
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += s.dropped
		s.mu.Unlock()
	}
	return n
}

// DroppedByShard reports each shard's overwrite count. Shards fill
// round-robin, so a skewed distribution points at a burst that wrapped
// one shard while others still had room.
func (r *Recorder) DroppedByShard() []int64 {
	out := make([]int64, recorderShards)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out[i] = s.dropped
		s.mu.Unlock()
	}
	return out
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.buf)
		s.mu.Unlock()
	}
	return n
}

// Events returns the retained events starting at or after since (the zero
// time returns everything), in chronological order.
func (r *Recorder) Events(since time.Time) []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, ev := range s.buf {
			if since.IsZero() || !ev.Start.Before(since) {
				out = append(out, ev)
			}
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Reset discards all retained events.
func (r *Recorder) Reset() {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.buf = s.buf[:0]
		s.next = 0
		s.dropped = 0
		s.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON

// traceEvent is one entry of the Chrome trace-event format (JSON Array
// Format / "traceEvents" object form), the schema chrome://tracing and
// perfetto load.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds
	Dur   *int64         `json:"dur,omitempty"` // microseconds, X events
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`  // instant-event scope
	ID    string         `json:"id,omitempty"` // flow-event chain id
	BP    string         `json:"bp,omitempty"` // flow binding point ("e")
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace file.
type chromeTrace struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// Trace-track tids: one logical thread per event family so the tracks
// stack cleanly in the viewer.
const (
	tidKernels   = 1
	tidTransfers = 2
	tidDevice    = 3
	tidSpans     = 4
	tidBatches   = 5
	// tidRequestBase starts the per-request track range: concurrent
	// request spans spread across requestTracks tids (keyed by flow ID) so
	// overlapping requests don't stack on one another in the viewer.
	tidRequestBase = 16
	requestTracks  = 16
)

// requestTID spreads request spans across the request track range.
func requestTID(flowID uint64) int {
	return tidRequestBase + int(flowID%requestTracks)
}

func micros(t time.Time) int64 { return t.UnixNano() / int64(time.Microsecond) }
func durMicros(ms float64) *int64 {
	d := int64(ms * 1000)
	if d < 0 {
		d = 0
	}
	return &d
}
func shapesString(shapes [][]int) string { return fmt.Sprint(shapes) }

// flowIDString renders a flow chain id; Chrome accepts string ids.
func flowIDString(id uint64) string { return fmt.Sprintf("flow-%d", id) }

// expandTraceEvents lowers one telemetry event onto the Chrome schema.
// Request-flow events expand to more than one trace event: a request span
// also opens a flow (ph "s") and its execute stage closes it (ph "f",
// bp "e") inside the batch slice, which is what draws the fan-in arrows
// from N request tracks into one batched execution in chrome://tracing.
func expandTraceEvents(ev Event) []traceEvent {
	te := toTraceEvent(ev)
	switch ev.Kind {
	case KindRequest:
		if ev.FlowID == 0 {
			return []traceEvent{te}
		}
		// The flow starts at the request span's start, on its track.
		return []traceEvent{te, {
			Name:  "request-flow",
			Cat:   "flow",
			Phase: "s",
			TS:    te.TS,
			PID:   te.PID,
			TID:   te.TID,
			ID:    flowIDString(ev.FlowID),
		}}
	case KindStage:
		if ev.Name != "execute" || ev.FlowID == 0 {
			return []traceEvent{te}
		}
		// The flow finishes inside the batch slice (bp "e" binds the event
		// to the slice enclosing its timestamp on the batch track).
		mid := te.TS
		if te.Dur != nil {
			mid += *te.Dur / 2
		}
		return []traceEvent{te, {
			Name:  "request-flow",
			Cat:   "flow",
			Phase: "f",
			TS:    mid,
			PID:   te.PID,
			TID:   tidBatches,
			ID:    flowIDString(ev.FlowID),
			BP:    "e",
		}}
	}
	return []traceEvent{te}
}

// toTraceEvent lowers one telemetry event onto the Chrome schema.
func toTraceEvent(ev Event) traceEvent {
	te := traceEvent{
		Name:  ev.Name,
		Cat:   ev.Kind.String(),
		Phase: "X",
		TS:    micros(ev.Start),
		PID:   1,
		Args:  map[string]any{},
	}
	if ev.Span != "" {
		te.Args["span"] = ev.Span
	}
	if ev.Backend != "" {
		te.Args["backend"] = ev.Backend
	}
	switch ev.Kind {
	case KindKernel:
		te.TID = tidKernels
		te.Dur = durMicros(ev.DurMS)
		te.Args["bytes_added"] = ev.Bytes
		te.Args["total_bytes"] = ev.TotalBytes
		if len(ev.InputShapes) > 0 {
			te.Args["input_shapes"] = shapesString(ev.InputShapes)
		}
		if len(ev.OutputShapes) > 0 {
			te.Args["output_shapes"] = shapesString(ev.OutputShapes)
		}
		if ev.HasKernelMS {
			te.Args["kernel_ms"] = ev.KernelMS
		}
	case KindUpload, KindDownload:
		te.TID = tidTransfers
		te.Dur = durMicros(ev.DurMS)
		te.Args["bytes"] = ev.Bytes
	case KindSpan:
		te.TID = tidSpans
		te.Dur = durMicros(ev.DurMS)
	case KindFence:
		te.TID = tidDevice
		te.Phase = "i"
		te.Scope = "t"
		if ev.DurMS > 0 {
			te.Args["wait_ms"] = ev.DurMS
		}
	case KindPageOut, KindPageIn:
		te.TID = tidDevice
		te.Dur = durMicros(ev.DurMS)
		te.Args["bytes"] = ev.Bytes
	case KindScope:
		// Scope closes become counter samples of the engine memory
		// timeline: chrome://tracing renders "C" events as stacked area
		// charts.
		te.TID = tidKernels
		te.Phase = "C"
		te.Name = "engine.memory"
		te.Args = map[string]any{
			"num_tensors": ev.NumTensors,
			"num_bytes":   ev.TotalBytes,
		}
	case KindRequest:
		te.TID = requestTID(ev.FlowID)
		te.Dur = durMicros(ev.DurMS)
		if ev.Trace != "" {
			te.Args["trace"] = ev.Trace
		}
	case KindStage:
		te.TID = requestTID(ev.FlowID)
		te.Dur = durMicros(ev.DurMS)
		if ev.Trace != "" {
			te.Args["trace"] = ev.Trace
		}
	case KindBatch:
		te.TID = tidBatches
		te.Dur = durMicros(ev.DurMS)
		te.Args["batch_size"] = ev.Count
		te.Args["batch_id"] = ev.FlowID
	case KindRewrite:
		// Rewrites happen at compile time, before any kernel runs; an
		// instant event on the kernel track marks each one.
		te.TID = tidKernels
		te.Phase = "i"
		te.Scope = "t"
		if ev.Trace != "" {
			te.Args["node"] = ev.Trace
		}
		if ev.Count > 0 {
			te.Args["nodes_removed"] = ev.Count
		}
	case KindVerify:
		// One slice per load-time graph verification pass, on the kernel
		// track (it runs before any kernel of the model dispatches).
		te.TID = tidKernels
		te.Dur = durMicros(ev.DurMS)
		te.Args["nodes_checked"] = ev.Count
	}
	if len(te.Args) == 0 {
		te.Args = nil
	}
	return te
}

// WriteChromeTrace renders events at or after since (zero time = all) as
// Chrome trace-event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer, since time.Time) error {
	return WriteChromeTrace(w, r.Events(since))
}

// WriteChromeTrace renders the given events as Chrome trace-event JSON
// (object form with a traceEvents array), loadable in chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{
		TraceEvents:     make([]traceEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"producer": "tfjs-go telemetry"},
	}
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, expandTraceEvents(ev)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

var _ Observer = (*Recorder)(nil)
