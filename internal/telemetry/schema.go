package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// validPhases are the Chrome trace-event phase codes this library emits or
// accepts: complete (X), duration begin/end (B/E), instant (i/I), counter
// (C), metadata (M), and flow start/step/finish (s/t/f).
var validPhases = map[string]bool{
	"X": true, "B": true, "E": true,
	"i": true, "I": true, "C": true, "M": true,
	"s": true, "t": true, "f": true,
}

// flowPhases are the flow-event phases, which additionally require an id
// binding the arrows of one flow chain together.
var flowPhases = map[string]bool{"s": true, "t": true, "f": true}

// ValidateChromeTrace checks data against the Chrome trace-event schema:
// either a bare JSON array of events or an object with a traceEvents
// array, where every event has a name, a known phase, a non-negative
// numeric ts, pid/tid fields, a non-negative dur on complete events and an
// args object on counter events. It returns nil for a loadable trace and a
// descriptive error for the first violation — the check the CI trace job
// and the round-trip test run.
func ValidateChromeTrace(data []byte) error {
	var events []json.RawMessage

	// Object form first: {"traceEvents": [...], ...}.
	var obj struct {
		TraceEvents *[]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &obj); err == nil && obj.TraceEvents != nil {
		events = *obj.TraceEvents
	} else {
		if err := json.Unmarshal(data, &events); err != nil {
			return fmt.Errorf("telemetry: trace is neither a traceEvents object nor an event array: %w", err)
		}
	}
	if len(events) == 0 {
		return fmt.Errorf("telemetry: trace contains no events")
	}

	for i, raw := range events {
		var ev struct {
			Name  *string        `json:"name"`
			Phase *string        `json:"ph"`
			TS    *float64       `json:"ts"`
			Dur   *float64       `json:"dur"`
			PID   *json.Number   `json:"pid"`
			TID   *json.Number   `json:"tid"`
			ID    *string        `json:"id"`
			Args  map[string]any `json:"args"`
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("telemetry: event %d is not an object: %w", i, err)
		}
		if ev.Phase == nil || *ev.Phase == "" {
			return fmt.Errorf("telemetry: event %d has no ph field", i)
		}
		if !validPhases[*ev.Phase] {
			return fmt.Errorf("telemetry: event %d has unknown phase %q", i, *ev.Phase)
		}
		if *ev.Phase == "M" {
			continue // metadata events only need ph + name
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("telemetry: event %d has no name", i)
		}
		if ev.TS == nil {
			return fmt.Errorf("telemetry: event %d (%s) has no ts", i, *ev.Name)
		}
		if *ev.TS < 0 {
			return fmt.Errorf("telemetry: event %d (%s) has negative ts %v", i, *ev.Name, *ev.TS)
		}
		if ev.PID == nil || ev.TID == nil {
			return fmt.Errorf("telemetry: event %d (%s) is missing pid/tid", i, *ev.Name)
		}
		if *ev.Phase == "X" {
			if ev.Dur == nil {
				return fmt.Errorf("telemetry: complete event %d (%s) has no dur", i, *ev.Name)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("telemetry: complete event %d (%s) has negative dur %v", i, *ev.Name, *ev.Dur)
			}
		}
		if *ev.Phase == "C" && len(ev.Args) == 0 {
			return fmt.Errorf("telemetry: counter event %d (%s) has no args", i, *ev.Name)
		}
		if flowPhases[*ev.Phase] && (ev.ID == nil || *ev.ID == "") {
			return fmt.Errorf("telemetry: flow event %d (%s) has no id", i, *ev.Name)
		}
	}
	return nil
}
