package telemetry

import (
	"sort"
	"sync"
	"time"
)

// distributionWindow bounds the per-metric sliding sample window used for
// percentile estimates.
const distributionWindow = 512

// Distribution is a bounded sliding window of float64 samples with
// quantile estimation — the percentile primitive shared by the kernel
// stats aggregator and the serving latency metrics.
type Distribution struct {
	mu      sync.Mutex
	samples []float64
	at      int
	count   int64
	total   float64
}

// NewDistribution returns an empty distribution with the default window.
func NewDistribution() *Distribution { return &Distribution{} }

// Observe adds one sample.
func (d *Distribution) Observe(v float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.count++
	d.total += v
	if len(d.samples) < distributionWindow {
		d.samples = append(d.samples, v)
		return
	}
	d.samples[d.at] = v
	d.at = (d.at + 1) % distributionWindow
}

// Count returns the total number of observed samples.
func (d *Distribution) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Total returns the sum of all observed samples.
func (d *Distribution) Total() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Quantiles returns the requested quantiles (each in [0,1]) over the
// recent sample window. Zeroes when empty.
func (d *Distribution) Quantiles(qs ...float64) []float64 {
	d.mu.Lock()
	samples := make([]float64, len(d.samples))
	copy(samples, d.samples)
	d.mu.Unlock()
	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	sort.Float64s(samples)
	for i, q := range qs {
		idx := int(q * float64(len(samples)-1))
		out[i] = samples[idx]
	}
	return out
}

// KernelStat is the aggregate for one kernel name: invocation count,
// total and p50/p95 wall time, device kernel time where measured, and the
// bytes its outputs added.
type KernelStat struct {
	Name       string  `json:"name"`
	Count      int64   `json:"count"`
	TotalMS    float64 `json:"total_ms"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	KernelMS   float64 `json:"kernel_ms,omitempty"`
	HasKernel  bool    `json:"-"`
	BytesAdded int64   `json:"bytes_added"`
}

// TransferStat aggregates data movement across the host/device boundary.
type TransferStat struct {
	UploadCount   int64   `json:"upload_count"`
	UploadBytes   int64   `json:"upload_bytes"`
	UploadMS      float64 `json:"upload_ms"`
	DownloadCount int64   `json:"download_count"`
	DownloadBytes int64   `json:"download_bytes"`
	DownloadMS    float64 `json:"download_ms"`
	PageOutCount  int64   `json:"page_out_count"`
	PageOutBytes  int64   `json:"page_out_bytes"`
	PageInCount   int64   `json:"page_in_count"`
	PageInBytes   int64   `json:"page_in_bytes"`
	FenceCount    int64   `json:"fence_count"`
}

// MemorySample is one point of the engine memory timeline, taken at a
// tidy-scope boundary.
type MemorySample struct {
	Time       time.Time `json:"time"`
	Scope      string    `json:"scope"`
	NumTensors int       `json:"num_tensors"`
	NumBytes   int64     `json:"num_bytes"`
}

// timelineCap bounds the retained memory timeline.
const timelineCap = 4096

// kernelAgg is the mutable per-kernel accumulator.
type kernelAgg struct {
	count     int64
	totalMS   float64
	kernelMS  float64
	hasKernel bool
	bytes     int64
	dist      *Distribution
}

// Stats is an Observer aggregating kernel statistics (globally and per
// model span), transfer counters and the engine memory timeline. It backs
// tfjs-profile's table and the serving /metrics per-kernel breakdowns, so
// the two surfaces agree by construction.
type Stats struct {
	mu       sync.Mutex
	kernels  map[string]*kernelAgg            // by kernel name
	bySpan   map[string]map[string]*kernelAgg // span → kernel name → agg
	transfer TransferStat
	timeline []MemorySample
	tlAt     int
	rewrites map[string]int64 // optimizer pattern label → fire count
}

// NewStats returns an empty aggregator.
func NewStats() *Stats {
	return &Stats{
		kernels:  map[string]*kernelAgg{},
		bySpan:   map[string]map[string]*kernelAgg{},
		rewrites: map[string]int64{},
	}
}

// Observe implements Observer.
func (s *Stats) Observe(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case KindKernel:
		s.aggregate(s.kernels, ev)
		if ev.Span != "" {
			m, ok := s.bySpan[ev.Span]
			if !ok {
				m = map[string]*kernelAgg{}
				s.bySpan[ev.Span] = m
			}
			s.aggregate(m, ev)
		}
	case KindUpload:
		s.transfer.UploadCount++
		s.transfer.UploadBytes += ev.Bytes
		s.transfer.UploadMS += ev.DurMS
	case KindDownload:
		s.transfer.DownloadCount++
		s.transfer.DownloadBytes += ev.Bytes
		s.transfer.DownloadMS += ev.DurMS
	case KindPageOut:
		s.transfer.PageOutCount++
		s.transfer.PageOutBytes += ev.Bytes
	case KindPageIn:
		s.transfer.PageInCount++
		s.transfer.PageInBytes += ev.Bytes
	case KindFence:
		s.transfer.FenceCount++
	case KindRewrite:
		s.rewrites[ev.Name]++
	case KindScope:
		sample := MemorySample{
			Time:       ev.Start,
			Scope:      ev.Name,
			NumTensors: ev.NumTensors,
			NumBytes:   ev.TotalBytes,
		}
		if len(s.timeline) < timelineCap {
			s.timeline = append(s.timeline, sample)
		} else {
			s.timeline[s.tlAt] = sample
			s.tlAt = (s.tlAt + 1) % timelineCap
		}
	}
}

// aggregate folds one kernel event into an accumulator map. Caller holds
// the lock.
func (s *Stats) aggregate(m map[string]*kernelAgg, ev Event) {
	a, ok := m[ev.Name]
	if !ok {
		a = &kernelAgg{dist: NewDistribution()}
		m[ev.Name] = a
	}
	a.count++
	a.totalMS += ev.DurMS
	a.bytes += ev.Bytes
	if ev.HasKernelMS {
		a.kernelMS += ev.KernelMS
		a.hasKernel = true
	}
	a.dist.Observe(ev.DurMS)
}

// snapshot renders an accumulator map, sorted by total time descending.
func snapshot(m map[string]*kernelAgg) []KernelStat {
	out := make([]KernelStat, 0, len(m))
	for name, a := range m {
		qs := a.dist.Quantiles(0.50, 0.95)
		out = append(out, KernelStat{
			Name:       name,
			Count:      a.count,
			TotalMS:    a.totalMS,
			P50MS:      qs[0],
			P95MS:      qs[1],
			KernelMS:   a.kernelMS,
			HasKernel:  a.hasKernel,
			BytesAdded: a.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Kernels returns the per-kernel aggregates across all spans, sorted by
// total wall time descending.
func (s *Stats) Kernels() []KernelStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return snapshot(s.kernels)
}

// Spans lists the model spans with recorded kernels, sorted.
func (s *Stats) Spans() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.bySpan))
	for name := range s.bySpan {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KernelsForSpan returns the per-kernel aggregates attributed to one model
// span.
func (s *Stats) KernelsForSpan(span string) []KernelStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.bySpan[span]
	if !ok {
		return nil
	}
	return snapshot(m)
}

// Transfers returns the data-movement counters.
func (s *Stats) Transfers() TransferStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transfer
}

// Timeline returns the retained memory timeline in observation order.
func (s *Stats) Timeline() []MemorySample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MemorySample, 0, len(s.timeline))
	// Ring order: oldest first.
	if len(s.timeline) == timelineCap {
		out = append(out, s.timeline[s.tlAt:]...)
		out = append(out, s.timeline[:s.tlAt]...)
	} else {
		out = append(out, s.timeline...)
	}
	return out
}

// Rewrites returns the graph-optimizer rewrite counts by pattern label.
func (s *Stats) Rewrites() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.rewrites))
	for k, v := range s.rewrites {
		out[k] = v
	}
	return out
}

// Reset clears all aggregates.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kernels = map[string]*kernelAgg{}
	s.bySpan = map[string]map[string]*kernelAgg{}
	s.transfer = TransferStat{}
	s.timeline = nil
	s.tlAt = 0
	s.rewrites = map[string]int64{}
}

var _ Observer = (*Stats)(nil)
