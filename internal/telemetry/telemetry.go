// Package telemetry is the unified observability layer of the library: one
// Observer surface behind which op-level tracing, per-kernel statistics and
// the engine memory timeline are implemented (Sections 3.7–3.8 of the
// paper, made a first-class subsystem the way the TensorFlow whitepaper
// treats tracing rather than a debug afterthought).
//
// Producers — the engine (kernel dispatch, tensor upload/download,
// tidy-scope close), the graph executor (model spans) and the simulated
// WebGL device layer (fences, texture paging) — emit flat Event values into
// a Hub. Consumers register Observers on the hub: the ring-buffer trace
// Recorder (Chrome trace-event JSON), the Stats aggregator (count /
// total / p50 / p95 per kernel, bytes moved, memory timeline), or any
// user-supplied hook via tf.WithTelemetry.
//
// The hub is engineered for zero cost when nothing observes: producers
// gate every emission on Hub.Active(), a single atomic load, so an
// unobserved process pays one predictable branch per kernel.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gid"
)

// EventKind discriminates the event types flowing through a Hub.
type EventKind uint8

// Event kinds. Kernel/Span carry durations; Upload/Download/Page carry
// bytes moved; Scope carries the engine memory gauges; Fence marks device
// sync points.
const (
	// KindKernel is one kernel dispatch on a backend.
	KindKernel EventKind = iota
	// KindUpload is host→device tensor data movement (Engine.MakeTensor).
	KindUpload
	// KindDownload is device→host data movement (DataSync / Data).
	KindDownload
	// KindScope is a tidy-scope close, sampling numTensors/numBytes.
	KindScope
	// KindSpan is a model-scoped execution section (graphmodel.Execute).
	KindSpan
	// KindFence is a device fence/readback-signal event (webgl sim).
	KindFence
	// KindPageOut is a texture paged from device to host memory.
	KindPageOut
	// KindPageIn is a texture paged back onto the device.
	KindPageIn
	// KindRequest is one serving request's end-to-end span, carrying the
	// request's trace ID and flow ID (request-flow tracing).
	KindRequest
	// KindStage is one per-request serving stage: queue_wait, gather,
	// execute or split. The execute stage carries the flow ID linking the
	// request into its batched execution.
	KindStage
	// KindBatch is one batched serving execution — the fan-in target the
	// coalesced requests' flow events point at. Count is the batch size.
	KindBatch
	// KindRewrite is one graph-optimizer rewrite (a fusion, a fold, a prune)
	// applied while compiling a model. Name is the pattern label
	// ("fuse:Conv2D+BiasAdd+Relu6"), Trace the rewritten node, Span the
	// model, Count the nodes removed.
	KindRewrite
	// KindVerify is one load-time static shape/dtype verification pass over
	// a model graph (graphmodel's verifier). Name is the outcome ("ok" or
	// "reject"), Count the number of nodes checked, Span the model.
	KindVerify
)

// String names the kind for trace output.
func (k EventKind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindUpload:
		return "upload"
	case KindDownload:
		return "download"
	case KindScope:
		return "scope"
	case KindSpan:
		return "span"
	case KindFence:
		return "fence"
	case KindPageOut:
		return "page_out"
	case KindPageIn:
		return "page_in"
	case KindRequest:
		return "request"
	case KindStage:
		return "stage"
	case KindBatch:
		return "batch"
	case KindRewrite:
		return "rewrite"
	case KindVerify:
		return "verify"
	}
	return "unknown"
}

// Event is the single flat record all producers emit. Fields are populated
// per kind; unused fields are zero. A flat struct (no per-kind interfaces)
// keeps emission allocation-free on the hot path.
type Event struct {
	Kind EventKind
	// Name is the kernel name, scope name, span name, or device event
	// label.
	Name string
	// Span is the enclosing model span, when a model execution is in
	// flight (set by the hub, not the producer).
	Span string
	// Backend names the backend involved, when known.
	Backend string
	// Start is the event start time.
	Start time.Time
	// DurMS is the wall duration in milliseconds (Kernel, Span, Upload,
	// Download, Fence).
	DurMS float64
	// KernelMS is device-measured kernel time when the backend can
	// measure it (webgl's modeled GPU time).
	KernelMS float64
	// HasKernelMS reports whether KernelMS is meaningful.
	HasKernelMS bool
	// Bytes is the payload size: bytes added by a kernel, moved by a
	// transfer, or paged.
	Bytes int64
	// TotalBytes is the engine's numBytes after the event (Kernel, Scope).
	TotalBytes int64
	// NumTensors is the engine's live-tensor count (Scope).
	NumTensors int
	// InputShapes / OutputShapes describe kernel operands (Kernel only).
	InputShapes  [][]int
	OutputShapes [][]int
	// Trace is the request/trace ID of serving request-flow events
	// (Request, Stage). It is minted by the HTTP layer (honoring an
	// inbound X-Request-ID) or by the scheduler for direct submitters.
	Trace string
	// FlowID links a request span to the batched execution that served it:
	// the Request event and its execute Stage event share a FlowID, which
	// the trace renderer turns into a Chrome flow (ph "s"/"f") so N
	// coalesced requests visibly fan into one batch slice. On Batch events
	// it is the batch's own sequence number.
	FlowID uint64
	// Count is a generic cardinality: the batch size on Batch events.
	Count int
	// Elements is the total output element count of a kernel dispatch
	// (Kernel only) — the denominator of the continuous profiler's
	// measured ns/element accounts.
	Elements int64
}

// Observer receives telemetry events. Implementations must be safe for
// concurrent calls and must not block: they run inline on the emitting
// goroutine (the kernel dispatch path).
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// Hub fans events out to registered observers. Registration is
// copy-on-write so emission reads the observer list with one atomic load
// and never takes a lock.
type Hub struct {
	mu        sync.Mutex // guards writes to observers
	observers atomic.Pointer[[]*registration]
	// spans maps goroutine id -> innermost open *spanFrame. With replica
	// engines, several model executions (each its own span) run
	// concurrently on one hub; goroutine-keyed frames keep each
	// execution's kernel events attributed to its own model. spanCount
	// gates the map lookup so a span-free process never parses a stack.
	spans     sync.Map
	spanCount atomic.Int64
	// span is the most-recently-opened frame, kept as a fallback for
	// emitters running on goroutines that did not open the span
	// themselves (backend worker pools, async download futures). With one
	// execution at a time it is exact — the pre-replica behaviour; with
	// concurrent spans it is an approximation for off-goroutine events
	// only.
	span  atomic.Pointer[spanFrame]
	clock func() time.Time // test seam; nil means time.Now
}

// registration gives each registered observer a unique identity so removal
// works for uncomparable observer types (funcs).
type registration struct{ obs Observer }

// spanFrame is one entry of the model-span stack (spans nest when a model
// executes inside another's scope).
type spanFrame struct {
	name   string
	start  time.Time
	parent *spanFrame
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

var defaultHub = NewHub()

// Default returns the process-wide hub, the one the global engine and the
// backends emit into.
func Default() *Hub { return defaultHub }

// Active reports whether any observer is registered — the producer-side
// gate, a single atomic load.
func (h *Hub) Active() bool {
	obs := h.observers.Load()
	return obs != nil && len(*obs) > 0
}

// Register adds an observer and returns its removal function. Safe for
// concurrent use.
func (h *Hub) Register(o Observer) (remove func()) {
	reg := &registration{obs: o}
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.observers.Load()
	var next []*registration
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, reg)
	h.observers.Store(&next)
	var once sync.Once
	return func() {
		once.Do(func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			cur := h.observers.Load()
			if cur == nil {
				return
			}
			pruned := make([]*registration, 0, len(*cur))
			for _, x := range *cur {
				if x != reg {
					pruned = append(pruned, x)
				}
			}
			h.observers.Store(&pruned)
		})
	}
}

// now returns the hub's notion of time.
func (h *Hub) now() time.Time {
	if h.clock != nil {
		return h.clock()
	}
	return time.Now()
}

// Emit delivers the event to every registered observer, stamping the start
// time when unset and tagging the event with the current model span. A hub
// with no observers drops the event after one atomic load.
func (h *Hub) Emit(ev Event) {
	obs := h.observers.Load()
	if obs == nil || len(*obs) == 0 {
		return
	}
	if ev.Start.IsZero() {
		ev.Start = h.now()
	}
	if ev.Span == "" {
		if f := h.currentFrame(); f != nil {
			ev.Span = f.name
		}
	}
	for _, r := range *obs {
		r.obs.Observe(ev)
	}
}

// BeginSpan opens a model-scoped span: until the returned end function
// runs, kernel and transfer events emitted by this goroutine are tagged
// with name, which makes concurrent serving traces attributable per
// model. Spans may nest on one goroutine; the innermost wins. The end
// function emits a KindSpan event spanning the section.
//
// Spans opened by different goroutines are independent: each replica
// engine's execution tags its own events even while others run. Events
// emitted from goroutines that did not open a span (device worker pools)
// fall back to the most-recently-opened frame.
func (h *Hub) BeginSpan(name string) (end func()) {
	id := gid.ID()
	var parent *spanFrame
	prev, hadPrev := h.spans.Load(id)
	if hadPrev {
		parent = prev.(*spanFrame)
	}
	frame := &spanFrame{name: name, start: h.now(), parent: parent}
	h.spans.Store(id, frame)
	if !hadPrev {
		h.spanCount.Add(1)
	}
	h.span.Store(frame)
	var once sync.Once
	return func() {
		once.Do(func() {
			// end may run on a different goroutine than BeginSpan (a
			// deferred close after a channel handoff); restore the entry
			// under the opener's id either way.
			if parent != nil {
				h.spans.Store(id, parent)
			} else {
				h.spans.Delete(id)
				h.spanCount.Add(-1)
			}
			// Only roll back the global fallback if no later span has
			// replaced it; concurrent spans race here by design and the
			// gid-keyed map stays exact regardless.
			h.span.CompareAndSwap(frame, parent)
			h.Emit(Event{
				Kind:  KindSpan,
				Name:  name,
				Start: frame.start,
				DurMS: float64(h.now().Sub(frame.start)) / float64(time.Millisecond),
			})
		})
	}
}

// currentFrame resolves the innermost span for the calling goroutine,
// falling back to the most-recently-opened frame for goroutines that
// opened none.
func (h *Hub) currentFrame() *spanFrame {
	if h.spanCount.Load() != 0 {
		if v, ok := h.spans.Load(gid.ID()); ok {
			return v.(*spanFrame)
		}
	}
	return h.span.Load()
}

// CurrentSpan returns the innermost open span name, or "".
func (h *Hub) CurrentSpan() string {
	if f := h.currentFrame(); f != nil {
		return f.name
	}
	return ""
}
