package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHubInactiveDropsEvents(t *testing.T) {
	h := NewHub()
	if h.Active() {
		t.Fatal("empty hub reports active")
	}
	// Emitting with no observers must be a no-op (and not panic).
	h.Emit(Event{Kind: KindKernel, Name: "MatMul"})
}

func TestHubRegisterEmitRemove(t *testing.T) {
	h := NewHub()
	var got []Event
	remove := h.Register(ObserverFunc(func(ev Event) { got = append(got, ev) }))
	if !h.Active() {
		t.Fatal("hub with observer reports inactive")
	}
	h.Emit(Event{Kind: KindKernel, Name: "Conv2D", DurMS: 1.5})
	if len(got) != 1 || got[0].Name != "Conv2D" {
		t.Fatalf("got %+v", got)
	}
	if got[0].Start.IsZero() {
		t.Fatal("Emit did not stamp Start")
	}
	remove()
	remove() // idempotent
	if h.Active() {
		t.Fatal("hub reports active after removal")
	}
	h.Emit(Event{Kind: KindKernel, Name: "Conv2D"})
	if len(got) != 1 {
		t.Fatal("event delivered after removal")
	}
}

func TestHubSpanAttribution(t *testing.T) {
	h := NewHub()
	var spans []string
	var names []string
	h.Register(ObserverFunc(func(ev Event) {
		if ev.Kind == KindKernel {
			spans = append(spans, ev.Span)
		}
		if ev.Kind == KindSpan {
			names = append(names, ev.Name)
		}
	}))
	h.Emit(Event{Kind: KindKernel, Name: "A"})
	end := h.BeginSpan("mobilenet:input->Softmax")
	if h.CurrentSpan() != "mobilenet:input->Softmax" {
		t.Fatalf("CurrentSpan = %q", h.CurrentSpan())
	}
	h.Emit(Event{Kind: KindKernel, Name: "B"})
	endInner := h.BeginSpan("inner")
	h.Emit(Event{Kind: KindKernel, Name: "C"})
	endInner()
	h.Emit(Event{Kind: KindKernel, Name: "D"})
	end()
	end() // idempotent
	h.Emit(Event{Kind: KindKernel, Name: "E"})

	want := []string{"", "mobilenet:input->Softmax", "inner", "mobilenet:input->Softmax", ""}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span[%d] = %q, want %q", i, spans[i], want[i])
		}
	}
	if len(names) != 2 || names[0] != "inner" || names[1] != "mobilenet:input->Softmax" {
		t.Fatalf("span events = %v", names)
	}
}

func TestHubConcurrentRegisterEmit(t *testing.T) {
	h := NewHub()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			remove := h.Register(ObserverFunc(func(Event) {
				mu.Lock()
				count++
				mu.Unlock()
			}))
			for j := 0; j < 100; j++ {
				h.Emit(Event{Kind: KindKernel, Name: "K"})
			}
			remove()
		}()
	}
	wg.Wait()
	if count == 0 {
		t.Fatal("no events observed")
	}
}

func TestRecorderRingBounded(t *testing.T) {
	r := NewRecorder(64)
	base := time.Now()
	for i := 0; i < 1000; i++ {
		r.Observe(Event{Kind: KindKernel, Name: "K", Start: base.Add(time.Duration(i) * time.Millisecond)})
	}
	if n := r.Len(); n > 64 {
		t.Fatalf("ring retained %d events, cap 64", n)
	}
	if r.Dropped() == 0 {
		t.Fatal("ring reported no drops after wraparound")
	}
	evs := r.Events(time.Time{})
	for i := 1; i < len(evs); i++ {
		if evs[i].Start.Before(evs[i-1].Start) {
			t.Fatal("events not chronological")
		}
	}
	// since-filtering drops the old half.
	cut := base.Add(990 * time.Millisecond)
	for _, ev := range r.Events(cut) {
		if ev.Start.Before(cut) {
			t.Fatal("since filter leaked an old event")
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestChromeTraceRoundTripsThroughSchema(t *testing.T) {
	r := NewRecorder(0)
	now := time.Now()
	r.Observe(Event{Kind: KindKernel, Name: "Conv2D", Start: now, DurMS: 2.5,
		Bytes: 1024, TotalBytes: 4096, Backend: "webgl",
		InputShapes: [][]int{{1, 96, 96, 3}}, OutputShapes: [][]int{{1, 48, 48, 8}},
		KernelMS: 0.8, HasKernelMS: true, Span: "mobilenet:in->out"})
	r.Observe(Event{Kind: KindUpload, Name: "upload", Start: now, DurMS: 0.1, Bytes: 512})
	r.Observe(Event{Kind: KindDownload, Name: "download", Start: now, DurMS: 0.2, Bytes: 256})
	r.Observe(Event{Kind: KindScope, Name: "tidy", Start: now, NumTensors: 7, TotalBytes: 2048})
	r.Observe(Event{Kind: KindSpan, Name: "mobilenet:in->out", Start: now, DurMS: 12})
	r.Observe(Event{Kind: KindFence, Name: "fenceSync", Start: now, DurMS: 0.05, Backend: "webgl"})
	r.Observe(Event{Kind: KindPageOut, Name: "page_out", Start: now, Bytes: 9999, Backend: "webgl"})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails own schema: %v\n%s", err, buf.String())
	}
	// Sanity: the kernel event survived with its args.
	var obj struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if len(obj.TraceEvents) != 7 {
		t.Fatalf("trace has %d events, want 7", len(obj.TraceEvents))
	}
	found := false
	for _, te := range obj.TraceEvents {
		if te["name"] == "Conv2D" {
			found = true
			args := te["args"].(map[string]any)
			if args["span"] != "mobilenet:in->out" {
				t.Fatalf("kernel args = %v", args)
			}
			if !strings.Contains(args["output_shapes"].(string), "48") {
				t.Fatalf("output shapes lost: %v", args)
			}
		}
	}
	if !found {
		t.Fatal("Conv2D event missing from trace")
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{{`,
		"empty":           `{"traceEvents": []}`,
		"no phase":        `[{"name":"x","ts":1,"pid":1,"tid":1}]`,
		"unknown phase":   `[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]`,
		"no name":         `[{"ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]`,
		"negative ts":     `[{"name":"x","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}]`,
		"X without dur":   `[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]`,
		"missing pid/tid": `[{"name":"x","ph":"X","ts":1,"dur":1}]`,
		"C without args":  `[{"name":"x","ph":"C","ts":1,"pid":1,"tid":1}]`,
	}
	for name, in := range cases {
		if err := ValidateChromeTrace([]byte(in)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// A valid bare array passes.
	ok := `[{"name":"x","ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("valid bare array rejected: %v", err)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewStats()
	now := time.Now()
	for i := 0; i < 10; i++ {
		s.Observe(Event{Kind: KindKernel, Name: "MatMul", DurMS: float64(i + 1), Bytes: 100, Span: "m:a->b", Start: now})
	}
	s.Observe(Event{Kind: KindKernel, Name: "Relu", DurMS: 0.5, Start: now})
	s.Observe(Event{Kind: KindUpload, Bytes: 64, DurMS: 0.1, Start: now})
	s.Observe(Event{Kind: KindDownload, Bytes: 32, DurMS: 0.1, Start: now})
	s.Observe(Event{Kind: KindScope, Name: "tidy", NumTensors: 3, TotalBytes: 300, Start: now})

	ks := s.Kernels()
	if len(ks) != 2 || ks[0].Name != "MatMul" {
		t.Fatalf("kernels = %+v", ks)
	}
	mm := ks[0]
	if mm.Count != 10 || mm.TotalMS != 55 || mm.BytesAdded != 1000 {
		t.Fatalf("MatMul agg = %+v", mm)
	}
	if mm.P50MS < 1 || mm.P50MS > mm.P95MS || mm.P95MS > 10 {
		t.Fatalf("percentiles p50=%v p95=%v", mm.P50MS, mm.P95MS)
	}
	if spans := s.Spans(); len(spans) != 1 || spans[0] != "m:a->b" {
		t.Fatalf("spans = %v", spans)
	}
	sk := s.KernelsForSpan("m:a->b")
	if len(sk) != 1 || sk[0].Count != 10 {
		t.Fatalf("span kernels = %+v", sk)
	}
	tr := s.Transfers()
	if tr.UploadCount != 1 || tr.UploadBytes != 64 || tr.DownloadCount != 1 {
		t.Fatalf("transfers = %+v", tr)
	}
	tl := s.Timeline()
	if len(tl) != 1 || tl[0].NumTensors != 3 || tl[0].NumBytes != 300 {
		t.Fatalf("timeline = %+v", tl)
	}
	s.Reset()
	if len(s.Kernels()) != 0 || len(s.Timeline()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestDistributionQuantiles(t *testing.T) {
	d := NewDistribution()
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	qs := d.Quantiles(0, 0.5, 0.95, 1)
	if qs[0] != 1 || qs[3] != 100 {
		t.Fatalf("min/max = %v", qs)
	}
	if qs[1] < 45 || qs[1] > 55 {
		t.Fatalf("p50 = %v", qs[1])
	}
	if qs[2] < 90 || qs[2] > 100 {
		t.Fatalf("p95 = %v", qs[2])
	}
	if d.Count() != 100 || d.Total() != 5050 {
		t.Fatalf("count=%d total=%v", d.Count(), d.Total())
	}
	// Window stays bounded.
	for i := 0; i < distributionWindow*3; i++ {
		d.Observe(1)
	}
	if got := d.Quantiles(0.99)[0]; got != 1 {
		t.Fatalf("window not sliding: p99=%v", got)
	}
}
