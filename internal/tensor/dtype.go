// Package tensor provides the core Tensor data structure of the library:
// an immutable, shape-annotated handle onto a reference-counted data
// container owned by a backend.
//
// Mirroring the design in Section 3.4 of the TensorFlow.js paper, tensors
// are decoupled from the data that backs them: operations such as reshape
// and clone are effectively free because they produce shallow copies that
// point at the same data container. Disposal decrements the container's
// reference count; the container itself is released only when no tensors
// reference it.
package tensor

import "fmt"

// DataType enumerates the element types supported by the library.
//
// As in the WebGL backend of TensorFlow.js, all backends in this
// implementation physically store values as float32 regardless of the
// logical dtype (WebGL float textures can hold nothing else). Int32 values
// above 2^24 therefore lose precision, exactly as they do on the WebGL
// backend described in the paper.
type DataType int

const (
	// Float32 is the default numeric type.
	Float32 DataType = iota
	// Int32 is an integer type stored in float32 containers.
	Int32
	// Bool is a logical type stored as 0.0 / 1.0.
	Bool
)

// String implements fmt.Stringer.
func (d DataType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int32:
		return "int32"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("DataType(%d)", int(d))
	}
}

// BytesPerElement reports the logical width of one element of this dtype.
// All dtypes are stored in 4-byte containers (see DataType).
func (d DataType) BytesPerElement() int { return 4 }

// ParseDataType converts a serialized dtype name (as used in the Keras and
// converter JSON formats) back to a DataType.
func ParseDataType(s string) (DataType, error) {
	switch s {
	case "float32", "":
		return Float32, nil
	case "int32":
		return Int32, nil
	case "bool":
		return Bool, nil
	default:
		return Float32, fmt.Errorf("tensor: unknown dtype %q", s)
	}
}
