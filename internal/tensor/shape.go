package tensor

import "fmt"

// ShapeSize returns the number of elements in a shape. The empty shape
// (a scalar) has size 1.
func ShapeSize(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// ComputeStrides returns row-major strides for shape. Strides have
// len(shape) entries; the last entry is 1. A scalar has nil strides.
func ComputeStrides(shape []int) []int {
	rank := len(shape)
	if rank == 0 {
		return nil
	}
	strides := make([]int, rank)
	strides[rank-1] = 1
	for i := rank - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * shape[i+1]
	}
	return strides
}

// ShapesEqual reports whether two shapes are identical.
func ShapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CopyShape returns a defensive copy of shape.
func CopyShape(shape []int) []int {
	out := make([]int, len(shape))
	copy(out, shape)
	return out
}

// InferShape resolves a shape specification that may contain a single -1
// wildcard dimension, given the total element count. It returns an error
// if the size is not divisible or the shape contains multiple wildcards.
func InferShape(shape []int, size int) ([]int, error) {
	out := CopyShape(shape)
	wild := -1
	known := 1
	for i, d := range out {
		switch {
		case d == -1:
			if wild != -1 {
				return nil, fmt.Errorf("tensor: shape %v has more than one -1 dimension", shape)
			}
			wild = i
		case d < 0:
			return nil, fmt.Errorf("tensor: shape %v has negative dimension %d", shape, d)
		default:
			known *= d
		}
	}
	if wild == -1 {
		if known != size {
			return nil, fmt.Errorf("tensor: shape %v (size %d) incompatible with %d elements", shape, known, size)
		}
		return out, nil
	}
	if known == 0 || size%known != 0 {
		return nil, fmt.Errorf("tensor: cannot infer -1 in shape %v for %d elements", shape, size)
	}
	out[wild] = size / known
	return out, nil
}

// BroadcastShapes computes the NumPy-style broadcast shape of a and b,
// or an error if the shapes are incompatible.
func BroadcastShapes(a, b []int) ([]int, error) {
	ra, rb := len(a), len(b)
	rank := ra
	if rb > rank {
		rank = rb
	}
	out := make([]int, rank)
	for i := 0; i < rank; i++ {
		da, db := 1, 1
		if i >= rank-ra {
			da = a[i-(rank-ra)]
		}
		if i >= rank-rb {
			db = b[i-(rank-rb)]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast shapes %v and %v", a, b)
		}
	}
	return out, nil
}

// SqueezeShape removes all size-1 dimensions from shape and returns the
// squeezed shape plus the kept axes (indices into the original shape).
// This is the logical-shape optimization described in Section 4.1 of the
// paper: the shader compiler maps only non-degenerate dimensions into
// texture space.
func SqueezeShape(shape []int) (newShape, keptAxes []int) {
	for i, d := range shape {
		if d != 1 {
			newShape = append(newShape, d)
			keptAxes = append(keptAxes, i)
		}
	}
	return newShape, keptAxes
}

// IndexToLoc converts a flat row-major index into a multi-dimensional
// location for the given strides.
func IndexToLoc(index int, rank int, strides []int) []int {
	loc := make([]int, rank)
	if rank == 0 {
		return loc
	}
	for i := 0; i < rank-1; i++ {
		loc[i] = index / strides[i]
		index -= loc[i] * strides[i]
	}
	loc[rank-1] = index
	return loc
}

// LocToIndex converts a multi-dimensional location to a flat row-major
// index for the given strides.
func LocToIndex(loc []int, rank int, strides []int) int {
	if rank == 0 {
		return 0
	}
	idx := loc[rank-1]
	for i := 0; i < rank-1; i++ {
		idx += loc[i] * strides[i]
	}
	return idx
}
