package tensor

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/jsenv"
)

// DataID is an opaque handle onto a backend-owned data container. Several
// tensors may share one DataID (the result of reshape or clone), which is
// what makes those operations free (Section 3.4).
type DataID int64

var nextDataID atomic.Int64

// NewDataID allocates a process-unique data container handle.
func NewDataID() DataID { return DataID(nextDataID.Add(1)) }

var nextTensorID atomic.Int64

// NewTensorID allocates a process-unique tensor id.
func NewTensorID() int64 { return nextTensorID.Add(1) }

// Handler is the engine-side service a Tensor uses to read, dispose and
// retain itself. The concrete implementation lives in internal/core; the
// indirection keeps this package free of a dependency cycle, the same way
// TensorFlow.js tensors talk to a globally registered engine.
type Handler interface {
	// ReadSync synchronously downloads the values backing t, blocking the
	// caller until any pending device work completes (tensor.dataSync()).
	ReadSync(t *Tensor) []float32
	// Read asynchronously downloads the values backing t (tensor.data()).
	Read(t *Tensor) *jsenv.Future[[]float32]
	// Dispose releases t's claim on its data container.
	Dispose(t *Tensor)
	// Keep marks t to survive the enclosing tidy scope.
	Keep(t *Tensor)
	// Clone returns a new tensor sharing t's data container.
	Clone(t *Tensor) *Tensor
}

var handler atomic.Pointer[handlerBox]

type handlerBox struct{ h Handler }

// SetHandler installs the engine as the global tensor handler. It is called
// once by internal/core during initialization. Tensors created by a
// non-global engine carry their owning engine directly (SetOwner); the
// global handler is the fallback for tensors that predate ownership
// stamping and for the single-engine case.
func SetHandler(h Handler) { handler.Store(&handlerBox{h: h}) }

func getHandler() Handler {
	box := handler.Load()
	if box == nil {
		panic("tensor: no engine registered; import the tf package or internal/core")
	}
	return box.h
}

// Tensor is an immutable, shape-annotated handle onto a data container.
// The zero value is not usable; tensors are created by the engine.
type Tensor struct {
	// ID uniquely identifies this tensor handle.
	ID int64
	// DataID identifies the backing data container; shared across shallow
	// copies such as reshapes and clones.
	DataID DataID
	// Shape is the logical dimensions of the tensor. A scalar has an
	// empty shape.
	Shape []int
	// DType is the logical element type.
	DType DataType

	size     int
	strides  []int
	disposed atomic.Bool
	// owner is the engine that registered this tensor, when that engine is
	// not the process-global one. With several engines alive (replica
	// serving), data containers live in per-engine maps, so reads and
	// disposal must route back to the engine that holds the container —
	// regardless of which goroutine touches the handle later.
	owner Handler
}

// New constructs a tensor handle. It is intended for use by the engine and
// backends, not end users; user code creates tensors through the tf facade.
func New(dataID DataID, shape []int, dtype DataType) *Tensor {
	s := CopyShape(shape)
	return &Tensor{
		ID:      NewTensorID(),
		DataID:  dataID,
		Shape:   s,
		DType:   dtype,
		size:    ShapeSize(s),
		strides: ComputeStrides(s),
	}
}

// SetOwner binds the tensor to the engine that registered it. Called by
// the engine while it holds its own lock, before the handle is visible to
// any other goroutine; the subsequent mutex/channel handoff publishes the
// write, so reads of owner need no further synchronization.
func (t *Tensor) SetOwner(h Handler) { t.owner = h }

// Owner returns the engine this tensor was bound to, or nil if it belongs
// to the process-global engine.
func (t *Tensor) Owner() Handler { return t.owner }

func (t *Tensor) handler() Handler {
	if t.owner != nil {
		return t.owner
	}
	return getHandler()
}

// Size returns the number of elements.
func (t *Tensor) Size() int { return t.size }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Strides returns the row-major strides of the tensor's logical shape.
func (t *Tensor) Strides() []int { return t.strides }

// Bytes returns the logical memory footprint of the tensor.
func (t *Tensor) Bytes() int { return t.size * t.DType.BytesPerElement() }

// DataSync synchronously downloads the tensor's values. In the browser
// setting this blocks the main thread until the GPU finishes (Figure 2).
func (t *Tensor) DataSync() []float32 {
	t.mustLive("DataSync")
	return t.handler().ReadSync(t)
}

// Data asynchronously downloads the tensor's values, returning a future
// that resolves once the device has finished producing them (Figure 3).
func (t *Tensor) Data() *jsenv.Future[[]float32] {
	t.mustLive("Data")
	return t.handler().Read(t)
}

// Dispose releases this tensor's claim on its data container. Disposing a
// tensor twice is an error in TensorFlow.js; here the second call is a
// safe no-op so that tidy scopes and manual disposal compose.
func (t *Tensor) Dispose() {
	if t.disposed.CompareAndSwap(false, true) {
		t.handler().Dispose(t)
	}
}

// Disposed reports whether Dispose has been called on this handle.
func (t *Tensor) Disposed() bool { return t.disposed.Load() }

// Keep marks the tensor to survive the enclosing tidy scope (tf.keep).
func (t *Tensor) Keep() *Tensor {
	t.mustLive("Keep")
	t.handler().Keep(t)
	return t
}

// Clone returns a new tensor handle sharing this tensor's data container.
// Like reshape, this is free: no values are copied (Section 3.4).
func (t *Tensor) Clone() *Tensor {
	t.mustLive("Clone")
	return t.handler().Clone(t)
}

func (t *Tensor) mustLive(op string) {
	if t.disposed.Load() {
		panic(fmt.Sprintf("tensor: %s called on disposed tensor %d", op, t.ID))
	}
}

// String renders a short description such as Tensor[2x3 float32].
func (t *Tensor) String() string {
	dims := make([]string, len(t.Shape))
	for i, d := range t.Shape {
		dims[i] = fmt.Sprint(d)
	}
	shape := strings.Join(dims, "x")
	if shape == "" {
		shape = "scalar"
	}
	return fmt.Sprintf("Tensor[%s %s]", shape, t.DType)
}

// Format renders the tensor values like tensor.print() in TensorFlow.js.
// It downloads data synchronously.
func (t *Tensor) Format() string {
	vals := t.DataSync()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.String())
	writeValues(&b, vals, t.Shape, 0, 0)
	return b.String()
}

func writeValues(b *strings.Builder, vals []float32, shape []int, offset, depth int) {
	indent := strings.Repeat("  ", depth)
	if len(shape) == 0 {
		fmt.Fprintf(b, "%s%g\n", indent, vals[offset])
		return
	}
	if len(shape) == 1 {
		fmt.Fprintf(b, "%s[", indent)
		limit := shape[0]
		truncated := false
		if limit > 16 {
			limit = 16
			truncated = true
		}
		for i := 0; i < limit; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%g", vals[offset+i])
		}
		if truncated {
			fmt.Fprintf(b, ", ... (%d total)", shape[0])
		}
		b.WriteString("]\n")
		return
	}
	inner := ShapeSize(shape[1:])
	fmt.Fprintf(b, "%s[\n", indent)
	limit := shape[0]
	truncated := false
	if limit > 8 {
		limit = 8
		truncated = true
	}
	for i := 0; i < limit; i++ {
		writeValues(b, vals, shape[1:], offset+i*inner, depth+1)
	}
	if truncated {
		fmt.Fprintf(b, "%s  ... (%d slices total)\n", indent, shape[0])
	}
	fmt.Fprintf(b, "%s]\n", indent)
}
