package tensor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestShapeSize(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{nil, 1},
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 0, 4}, 0},
		{[]int{1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := ShapeSize(c.shape); got != c.want {
			t.Errorf("ShapeSize(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestComputeStrides(t *testing.T) {
	if got := ComputeStrides(nil); got != nil {
		t.Errorf("scalar strides = %v, want nil", got)
	}
	if got := ComputeStrides([]int{2, 3, 4}); !reflect.DeepEqual(got, []int{12, 4, 1}) {
		t.Errorf("strides(2,3,4) = %v", got)
	}
}

func TestInferShape(t *testing.T) {
	got, err := InferShape([]int{2, -1}, 6)
	if err != nil || !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("InferShape([2,-1], 6) = %v, %v", got, err)
	}
	if _, err := InferShape([]int{2, -1, -1}, 6); err == nil {
		t.Error("two wildcards should error")
	}
	if _, err := InferShape([]int{4}, 6); err == nil {
		t.Error("mismatched size should error")
	}
	if _, err := InferShape([]int{4, -1}, 6); err == nil {
		t.Error("non-divisible wildcard should error")
	}
}

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want []int
		err        bool
	}{
		{[]int{2, 3}, []int{2, 3}, []int{2, 3}, false},
		{[]int{2, 1}, []int{1, 3}, []int{2, 3}, false},
		{[]int{3}, []int{2, 3}, []int{2, 3}, false},
		{[]int{}, []int{2, 3}, []int{2, 3}, false},
		{[]int{2}, []int{3}, nil, true},
		{[]int{4, 1, 5}, []int{3, 1}, []int{4, 3, 5}, false},
	}
	for _, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("BroadcastShapes(%v, %v) should error", c.a, c.b)
			}
			continue
		}
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("BroadcastShapes(%v, %v) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
	}
}

// TestBroadcastCommutes is a property test: broadcasting is symmetric in
// its result shape.
func TestBroadcastCommutes(t *testing.T) {
	gen := func(r *rand.Rand) []int {
		rank := r.Intn(4)
		s := make([]int, rank)
		for i := range s {
			if r.Intn(2) == 0 {
				s[i] = 1
			} else {
				s[i] = 1 + r.Intn(4)
			}
		}
		return s
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(gen(r))
		vals[1] = reflect.ValueOf(gen(r))
	}}
	prop := func(a, b []int) bool {
		ab, errAB := BroadcastShapes(a, b)
		ba, errBA := BroadcastShapes(b, a)
		if (errAB == nil) != (errBA == nil) {
			return false
		}
		if errAB != nil {
			return true
		}
		return ShapesEqual(ab, ba)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestIndexLocRoundTrip is a property test: IndexToLoc and LocToIndex are
// inverses for any valid shape.
func TestIndexLocRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		rank := 1 + r.Intn(4)
		s := make([]int, rank)
		for i := range s {
			s[i] = 1 + r.Intn(5)
		}
		vals[0] = reflect.ValueOf(s)
		vals[1] = reflect.ValueOf(r.Intn(ShapeSize(s)))
	}}
	prop := func(shape []int, idx int) bool {
		strides := ComputeStrides(shape)
		loc := IndexToLoc(idx, len(shape), strides)
		for i, c := range loc {
			if c < 0 || c >= shape[i] {
				return false
			}
		}
		return LocToIndex(loc, len(shape), strides) == idx
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSqueezeShape(t *testing.T) {
	shape, axes := SqueezeShape([]int{1, 3, 1, 2})
	if !reflect.DeepEqual(shape, []int{3, 2}) || !reflect.DeepEqual(axes, []int{1, 3}) {
		t.Errorf("SqueezeShape(1,3,1,2) = %v, %v", shape, axes)
	}
	shape, axes = SqueezeShape([]int{1, 1})
	if len(shape) != 0 || len(axes) != 0 {
		t.Errorf("SqueezeShape(1,1) = %v, %v", shape, axes)
	}
}

func TestDataTypeStrings(t *testing.T) {
	for _, c := range []struct {
		dt   DataType
		want string
	}{{Float32, "float32"}, {Int32, "int32"}, {Bool, "bool"}} {
		if c.dt.String() != c.want {
			t.Errorf("%v.String() = %q", c.dt, c.dt.String())
		}
		parsed, err := ParseDataType(c.want)
		if err != nil || parsed != c.dt {
			t.Errorf("ParseDataType(%q) = %v, %v", c.want, parsed, err)
		}
	}
	if _, err := ParseDataType("float16"); err == nil {
		t.Error("unknown dtype should error")
	}
	if dt, err := ParseDataType(""); err != nil || dt != Float32 {
		t.Error("empty dtype should default to float32")
	}
}

func TestTensorBasics(t *testing.T) {
	tt := New(NewDataID(), []int{2, 3}, Float32)
	if tt.Size() != 6 || tt.Rank() != 2 || tt.Bytes() != 24 {
		t.Errorf("tensor basics wrong: size=%d rank=%d bytes=%d", tt.Size(), tt.Rank(), tt.Bytes())
	}
	if got := tt.String(); got != "Tensor[2x3 float32]" {
		t.Errorf("String() = %q", got)
	}
	scalar := New(NewDataID(), nil, Int32)
	if scalar.String() != "Tensor[scalar int32]" {
		t.Errorf("scalar String() = %q", scalar.String())
	}
}

func TestTensorIDsUnique(t *testing.T) {
	seen := map[DataID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewDataID()
		if seen[id] {
			t.Fatal("duplicate DataID")
		}
		seen[id] = true
	}
}
