package train

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Loss maps (labels, predictions) to a scalar loss tensor.
type Loss func(yTrue, yPred *tensor.Tensor) *tensor.Tensor

// MeanSquaredError is the 'meanSquaredError' loss of Listing 1.
func MeanSquaredError(yTrue, yPred *tensor.Tensor) *tensor.Tensor {
	return ops.Mean(ops.SquaredDifference(yTrue, yPred), nil, false)
}

// MeanAbsoluteError averages |yTrue - yPred|.
func MeanAbsoluteError(yTrue, yPred *tensor.Tensor) *tensor.Tensor {
	return ops.Mean(ops.Abs(ops.Sub(yTrue, yPred)), nil, false)
}

// CategoricalCrossentropy expects one-hot labels and probability
// predictions (for example the output of a softmax layer).
func CategoricalCrossentropy(yTrue, yPred *tensor.Tensor) *tensor.Tensor {
	eps := 1e-7
	clipped := ops.ClipByValue(yPred, eps, 1-eps)
	perExample := ops.Neg(ops.Sum(ops.Mul(yTrue, ops.Log(clipped)), []int{-1 + yPred.Rank()}, false))
	return ops.Mean(perExample, nil, false)
}

// SoftmaxCrossEntropyFromLogits combines softmax and cross-entropy
// numerically stably; yTrue is one-hot, logits are unnormalized scores.
func SoftmaxCrossEntropyFromLogits(yTrue, logits *tensor.Tensor) *tensor.Tensor {
	logProbs := ops.LogSoftmax(logits)
	perExample := ops.Neg(ops.Sum(ops.Mul(yTrue, logProbs), []int{logits.Rank() - 1}, false))
	return ops.Mean(perExample, nil, false)
}

// BinaryCrossentropy expects probabilities in (0, 1) and binary labels.
func BinaryCrossentropy(yTrue, yPred *tensor.Tensor) *tensor.Tensor {
	eps := 1e-7
	p := ops.ClipByValue(yPred, eps, 1-eps)
	term1 := ops.Mul(yTrue, ops.Log(p))
	term2 := ops.Mul(ops.Sub(ops.OnesLike(yTrue), yTrue), ops.Log(ops.Sub(ops.OnesLike(p), p)))
	return ops.Neg(ops.Mean(ops.Add(term1, term2), nil, false))
}

// NewLoss resolves a serialized loss name as used by model.compile().
func NewLoss(name string) (Loss, error) {
	switch name {
	case "meanSquaredError", "mse":
		return MeanSquaredError, nil
	case "meanAbsoluteError", "mae":
		return MeanAbsoluteError, nil
	case "categoricalCrossentropy":
		return CategoricalCrossentropy, nil
	case "softmaxCrossEntropy":
		return SoftmaxCrossEntropyFromLogits, nil
	case "binaryCrossentropy":
		return BinaryCrossentropy, nil
	default:
		return nil, fmt.Errorf("train: unknown loss %q", name)
	}
}

// Metric maps (labels, predictions) to a scalar metric tensor.
type Metric struct {
	Name string
	Fn   func(yTrue, yPred *tensor.Tensor) *tensor.Tensor
}

// Accuracy compares argmax classes of one-hot labels and predictions.
func Accuracy() Metric {
	return Metric{Name: "acc", Fn: func(yTrue, yPred *tensor.Tensor) *tensor.Tensor {
		axis := yPred.Rank() - 1
		match := ops.Equal(ops.ArgMax(yTrue, axis), ops.ArgMax(yPred, axis))
		return ops.Mean(ops.Cast(match, tensor.Float32), nil, false)
	}}
}

// BinaryAccuracy thresholds predictions at 0.5.
func BinaryAccuracy() Metric {
	return Metric{Name: "binaryAcc", Fn: func(yTrue, yPred *tensor.Tensor) *tensor.Tensor {
		pred := ops.Cast(ops.Greater(yPred, ops.Fill(yPred.Shape, 0.5)), tensor.Float32)
		match := ops.Equal(pred, yTrue)
		return ops.Mean(ops.Cast(match, tensor.Float32), nil, false)
	}}
}

// NewMetric resolves a serialized metric name.
func NewMetric(name string) (Metric, error) {
	switch name {
	case "accuracy", "acc":
		return Accuracy(), nil
	case "binaryAccuracy":
		return BinaryAccuracy(), nil
	default:
		return Metric{}, fmt.Errorf("train: unknown metric %q", name)
	}
}
