// Package train provides optimizers, loss functions and metrics — the
// training machinery behind model.compile()/model.fit() in the Layers API
// (Section 3.2) and tf.train.* in the Ops API.
package train

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Optimizer updates variables from gradients. Implementations hold their
// slot state (momenta, accumulators) in non-trainable variables so repeated
// Minimize calls never leak tensors.
type Optimizer interface {
	// Name identifies the optimizer in serialized configs ("sgd", "adam").
	Name() string
	// ApplyGradients applies one update step.
	ApplyGradients(grads map[*core.Variable]*tensor.Tensor)
	// Dispose releases slot variables.
	Dispose()
}

// Minimize computes gradients of f with respect to vars and applies them,
// returning the loss value. It is the optimizer.minimize() of the paper's
// training loop; all intermediates are tidied away (Section 3.7: "model.fit
// ... internally manage memory").
func Minimize(opt Optimizer, f func() *tensor.Tensor, vars []*core.Variable) *tensor.Tensor {
	e := core.Global()
	var loss *tensor.Tensor
	outs := e.Tidy("minimize", func() []*tensor.Tensor {
		res := e.VariableGrads(f, vars)
		opt.ApplyGradients(res.Grads)
		return []*tensor.Tensor{res.Value}
	})
	loss = outs[0]
	return loss
}

// slotMap lazily creates one zero-initialized slot variable per model
// variable.
type slotMap map[*core.Variable]*core.Variable

func (s slotMap) get(v *core.Variable, name string) *core.Variable {
	if slot, ok := s[v]; ok {
		return slot
	}
	e := core.Global()
	zeros := ops.Zeros(v.Shape()...)
	slot := e.NewVariable(zeros, v.Name+"/"+name, false)
	zeros.Dispose()
	s[v] = slot
	return slot
}

func (s slotMap) dispose() {
	for _, v := range s {
		v.Dispose()
	}
}

// SGD is plain stochastic gradient descent: v -= lr * g.
type SGD struct {
	LearningRate float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LearningRate: lr} }

// Name implements Optimizer.
func (o *SGD) Name() string { return "sgd" }

// ApplyGradients implements Optimizer.
func (o *SGD) ApplyGradients(grads map[*core.Variable]*tensor.Tensor) {
	e := core.Global()
	e.Tidy("sgd", func() []*tensor.Tensor {
		for v, g := range grads {
			v.Assign(ops.Sub(v.Value(), ops.MulScalar(g, float32(o.LearningRate))))
		}
		return nil
	})
}

// Dispose implements Optimizer.
func (o *SGD) Dispose() {}

// Momentum is SGD with (optionally Nesterov) momentum.
type Momentum struct {
	LearningRate float64
	MomentumRate float64
	Nesterov     bool

	accum slotMap
}

// NewMomentum returns a momentum optimizer.
func NewMomentum(lr, momentum float64, nesterov bool) *Momentum {
	return &Momentum{LearningRate: lr, MomentumRate: momentum, Nesterov: nesterov, accum: slotMap{}}
}

// Name implements Optimizer.
func (o *Momentum) Name() string { return "momentum" }

// ApplyGradients implements Optimizer.
func (o *Momentum) ApplyGradients(grads map[*core.Variable]*tensor.Tensor) {
	e := core.Global()
	e.Tidy("momentum", func() []*tensor.Tensor {
		for v, g := range grads {
			m := o.accum.get(v, "momentum")
			newM := ops.Add(ops.MulScalar(m.Value(), float32(o.MomentumRate)), g)
			m.Assign(newM)
			step := newM
			if o.Nesterov {
				step = ops.Add(g, ops.MulScalar(newM, float32(o.MomentumRate)))
			}
			v.Assign(ops.Sub(v.Value(), ops.MulScalar(step, float32(o.LearningRate))))
		}
		return nil
	})
}

// Dispose implements Optimizer.
func (o *Momentum) Dispose() { o.accum.dispose() }

// RMSProp keeps a decaying mean of squared gradients.
type RMSProp struct {
	LearningRate float64
	Decay        float64
	Epsilon      float64

	ms slotMap
}

// NewRMSProp returns an RMSProp optimizer.
func NewRMSProp(lr, decay, epsilon float64) *RMSProp {
	if epsilon == 0 {
		epsilon = 1e-7
	}
	return &RMSProp{LearningRate: lr, Decay: decay, Epsilon: epsilon, ms: slotMap{}}
}

// Name implements Optimizer.
func (o *RMSProp) Name() string { return "rmsprop" }

// ApplyGradients implements Optimizer.
func (o *RMSProp) ApplyGradients(grads map[*core.Variable]*tensor.Tensor) {
	e := core.Global()
	e.Tidy("rmsprop", func() []*tensor.Tensor {
		for v, g := range grads {
			s := o.ms.get(v, "rms")
			newS := ops.Add(
				ops.MulScalar(s.Value(), float32(o.Decay)),
				ops.MulScalar(ops.Square(g), float32(1-o.Decay)))
			s.Assign(newS)
			update := ops.Div(ops.MulScalar(g, float32(o.LearningRate)),
				ops.AddScalar(ops.Sqrt(newS), float32(o.Epsilon)))
			v.Assign(ops.Sub(v.Value(), update))
		}
		return nil
	})
}

// Dispose implements Optimizer.
func (o *RMSProp) Dispose() { o.ms.dispose() }

// Adagrad accumulates squared gradients without decay.
type Adagrad struct {
	LearningRate float64
	Epsilon      float64

	accum slotMap
}

// NewAdagrad returns an Adagrad optimizer.
func NewAdagrad(lr float64) *Adagrad {
	return &Adagrad{LearningRate: lr, Epsilon: 1e-7, accum: slotMap{}}
}

// Name implements Optimizer.
func (o *Adagrad) Name() string { return "adagrad" }

// ApplyGradients implements Optimizer.
func (o *Adagrad) ApplyGradients(grads map[*core.Variable]*tensor.Tensor) {
	e := core.Global()
	e.Tidy("adagrad", func() []*tensor.Tensor {
		for v, g := range grads {
			s := o.accum.get(v, "accum")
			newS := ops.Add(s.Value(), ops.Square(g))
			s.Assign(newS)
			update := ops.Div(ops.MulScalar(g, float32(o.LearningRate)),
				ops.AddScalar(ops.Sqrt(newS), float32(o.Epsilon)))
			v.Assign(ops.Sub(v.Value(), update))
		}
		return nil
	})
}

// Dispose implements Optimizer.
func (o *Adagrad) Dispose() { o.accum.dispose() }

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LearningRate float64
	Beta1        float64
	Beta2        float64
	Epsilon      float64

	m, v slotMap
	step int
}

// NewAdam returns an Adam optimizer with the standard defaults when betas
// are zero.
func NewAdam(lr, beta1, beta2, epsilon float64) *Adam {
	if beta1 == 0 {
		beta1 = 0.9
	}
	if beta2 == 0 {
		beta2 = 0.999
	}
	if epsilon == 0 {
		epsilon = 1e-8
	}
	return &Adam{LearningRate: lr, Beta1: beta1, Beta2: beta2, Epsilon: epsilon, m: slotMap{}, v: slotMap{}}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }

// ApplyGradients implements Optimizer.
func (o *Adam) ApplyGradients(grads map[*core.Variable]*tensor.Tensor) {
	o.step++
	corr1 := 1 - math.Pow(o.Beta1, float64(o.step))
	corr2 := 1 - math.Pow(o.Beta2, float64(o.step))
	e := core.Global()
	e.Tidy("adam", func() []*tensor.Tensor {
		for vr, g := range grads {
			m := o.m.get(vr, "m")
			v := o.v.get(vr, "v")
			newM := ops.Add(ops.MulScalar(m.Value(), float32(o.Beta1)), ops.MulScalar(g, float32(1-o.Beta1)))
			newV := ops.Add(ops.MulScalar(v.Value(), float32(o.Beta2)), ops.MulScalar(ops.Square(g), float32(1-o.Beta2)))
			m.Assign(newM)
			v.Assign(newV)
			mHat := ops.DivScalar(newM, float32(corr1))
			vHat := ops.DivScalar(newV, float32(corr2))
			update := ops.Div(ops.MulScalar(mHat, float32(o.LearningRate)),
				ops.AddScalar(ops.Sqrt(vHat), float32(o.Epsilon)))
			vr.Assign(ops.Sub(vr.Value(), update))
		}
		return nil
	})
}

// Dispose implements Optimizer.
func (o *Adam) Dispose() {
	o.m.dispose()
	o.v.dispose()
}

// NewOptimizer constructs an optimizer from a serialized name, as used by
// model.compile({optimizer: 'sgd'}) (Listing 1).
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	if lr == 0 {
		lr = 0.01
	}
	switch name {
	case "sgd":
		return NewSGD(lr), nil
	case "momentum":
		return NewMomentum(lr, 0.9, false), nil
	case "rmsprop":
		return NewRMSProp(lr, 0.9, 0), nil
	case "adagrad":
		return NewAdagrad(lr), nil
	case "adam":
		return NewAdam(lr, 0, 0, 0), nil
	default:
		return nil, fmt.Errorf("train: unknown optimizer %q", name)
	}
}
