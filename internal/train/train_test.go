package train_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/train"
)

func init() {
	core.Global().RegisterBackend("cpu", func() (kernels.Backend, error) { return cpu.New(), nil })
}

func TestMeanSquaredError(t *testing.T) {
	yTrue := ops.FromValues([]float32{1, 2, 3}, 3)
	yPred := ops.FromValues([]float32{2, 2, 5}, 3)
	defer yTrue.Dispose()
	defer yPred.Dispose()
	loss := train.MeanSquaredError(yTrue, yPred)
	defer loss.Dispose()
	// ((1)² + 0 + (2)²)/3 = 5/3.
	if got := loss.DataSync()[0]; math.Abs(float64(got)-5.0/3) > 1e-6 {
		t.Fatalf("mse = %g", got)
	}
}

func TestMeanAbsoluteError(t *testing.T) {
	yTrue := ops.FromValues([]float32{1, -2}, 2)
	yPred := ops.FromValues([]float32{0, 2}, 2)
	defer yTrue.Dispose()
	defer yPred.Dispose()
	loss := train.MeanAbsoluteError(yTrue, yPred)
	defer loss.Dispose()
	if got := loss.DataSync()[0]; math.Abs(float64(got)-2.5) > 1e-6 {
		t.Fatalf("mae = %g", got)
	}
}

func TestCategoricalCrossentropy(t *testing.T) {
	yTrue := ops.FromValues([]float32{0, 1, 0}, 1, 3)
	yPred := ops.FromValues([]float32{0.2, 0.7, 0.1}, 1, 3)
	defer yTrue.Dispose()
	defer yPred.Dispose()
	loss := train.CategoricalCrossentropy(yTrue, yPred)
	defer loss.Dispose()
	want := -math.Log(0.7)
	if got := float64(loss.DataSync()[0]); math.Abs(got-want) > 1e-5 {
		t.Fatalf("cce = %g, want %g", got, want)
	}
}

func TestSoftmaxCrossEntropyMatchesManual(t *testing.T) {
	yTrue := ops.FromValues([]float32{1, 0}, 1, 2)
	logits := ops.FromValues([]float32{2, 0}, 1, 2)
	defer yTrue.Dispose()
	defer logits.Dispose()
	loss := train.SoftmaxCrossEntropyFromLogits(yTrue, logits)
	defer loss.Dispose()
	// softmax(2,0) = (e²/(e²+1), ...); loss = -log(p0).
	p0 := math.Exp(2) / (math.Exp(2) + 1)
	if got := float64(loss.DataSync()[0]); math.Abs(got+math.Log(p0)) > 1e-5 {
		t.Fatalf("softmax ce = %g, want %g", got, -math.Log(p0))
	}
}

func TestBinaryCrossentropy(t *testing.T) {
	yTrue := ops.FromValues([]float32{1, 0}, 2)
	yPred := ops.FromValues([]float32{0.9, 0.2}, 2)
	defer yTrue.Dispose()
	defer yPred.Dispose()
	loss := train.BinaryCrossentropy(yTrue, yPred)
	defer loss.Dispose()
	want := -(math.Log(0.9) + math.Log(0.8)) / 2
	if got := float64(loss.DataSync()[0]); math.Abs(got-want) > 1e-5 {
		t.Fatalf("bce = %g, want %g", got, want)
	}
}

func TestAccuracyMetric(t *testing.T) {
	acc := train.Accuracy()
	yTrue := ops.FromValues([]float32{1, 0, 0, 1}, 2, 2)         // classes 0, 1
	yPred := ops.FromValues([]float32{0.9, 0.1, 0.8, 0.2}, 2, 2) // classes 0, 0
	defer yTrue.Dispose()
	defer yPred.Dispose()
	m := acc.Fn(yTrue, yPred)
	defer m.Dispose()
	if got := m.DataSync()[0]; got != 0.5 {
		t.Fatalf("accuracy = %g, want 0.5", got)
	}
}

func TestNewOptimizerNames(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "rmsprop", "adagrad", "adam"} {
		opt, err := train.NewOptimizer(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt.Name() != name {
			t.Fatalf("optimizer name %q != %q", opt.Name(), name)
		}
		opt.Dispose()
	}
	if _, err := train.NewOptimizer("lbfgs", 0.1); err == nil {
		t.Fatal("unknown optimizer must error")
	}
	if _, err := train.NewLoss("hinge"); err == nil {
		t.Fatal("unknown loss must error")
	}
	if _, err := train.NewMetric("auc"); err == nil {
		t.Fatal("unknown metric must error")
	}
}

func TestMinimizeDoesNotLeak(t *testing.T) {
	e := core.Global()
	init := ops.Scalar(0)
	w := e.NewVariable(init, "w_leak", true)
	init.Dispose()
	defer w.Dispose()
	opt := train.NewAdam(0.1, 0, 0, 0)
	defer opt.Dispose()

	step := func() {
		loss := train.Minimize(opt, func() *tensor.Tensor {
			diff := ops.SubScalar(w.Value(), 3)
			return ops.Mul(diff, diff)
		}, []*core.Variable{w})
		loss.Dispose()
	}
	step() // warmup allocates the Adam slot variables
	before := e.NumTensors()
	for i := 0; i < 10; i++ {
		step()
	}
	if after := e.NumTensors(); after != before {
		t.Fatalf("Minimize leaked tensors: %d -> %d", before, after)
	}
}

func TestMomentumNesterovConverges(t *testing.T) {
	e := core.Global()
	init := ops.Scalar(0)
	w := e.NewVariable(init, "w_nesterov", true)
	init.Dispose()
	defer w.Dispose()
	opt := train.NewMomentum(0.05, 0.9, true)
	defer opt.Dispose()
	var last float32
	for i := 0; i < 200; i++ {
		loss := train.Minimize(opt, func() *tensor.Tensor {
			diff := ops.SubScalar(w.Value(), 2)
			return ops.Mul(diff, diff)
		}, []*core.Variable{w})
		last = loss.DataSync()[0]
		loss.Dispose()
	}
	if last > 1e-3 {
		t.Fatalf("nesterov momentum did not converge: loss %g", last)
	}
}
