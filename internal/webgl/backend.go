package webgl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/glsim"
	"repro/internal/jsenv"
	"repro/internal/kernels"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config controls the backend's optimizations, each of which corresponds to
// a design decision called out in the paper and has an ablation benchmark.
type Config struct {
	// Device configures the simulated WebGL device.
	Device glsim.Config
	// Packed stores four values per RGBA texel instead of one value in
	// the red channel (§3.9; 1.3–1.4x on PoseNet-class models).
	Packed bool
	// SqueezeLogicalShapes enables the shader compiler's size-1 dimension
	// elimination (§4.1; ~1.3x average).
	SqueezeLogicalShapes bool
	// Recycling enables the texture recycler (§4.1.2).
	Recycling bool
	// PagingEnabled pages least-recently-used textures to host memory
	// when device memory exceeds PagingThresholdBytes (§4.1.2).
	PagingEnabled bool
	// PagingThresholdBytes is the device-memory budget; 0 means 512 MiB,
	// "estimated from the screen size" in the browser.
	PagingThresholdBytes int64
}

// DefaultConfig enables every optimization on a WebGL2 full-float device.
func DefaultConfig() Config {
	return Config{
		Device:               glsim.DefaultConfig(),
		Packed:               true,
		SqueezeLogicalShapes: true,
		Recycling:            true,
		PagingEnabled:        true,
		PagingThresholdBytes: 512 << 20,
	}
}

// Backend is the WebGL backend (Section 4.1). It has the highest complexity
// of the three backends, justified in the paper by its two-orders-of-
// magnitude speedup over plain JS.
type Backend struct {
	cfg     Config
	device  *glsim.Device
	manager *textureManager

	mu    sync.Mutex
	data  map[tensor.DataID]*texData
	bytes int64

	useTick atomic.Int64

	pagedBytes   atomic.Int64
	pageOuts     atomic.Int64
	pageIns      atomic.Int64
	kernelsTable map[string]kernels.OverrideKernel
}

// New creates a WebGL backend with the given configuration.
func New(cfg Config) *Backend {
	if cfg.PagingThresholdBytes == 0 {
		cfg.PagingThresholdBytes = 512 << 20
	}
	b := &Backend{
		cfg:    cfg,
		device: glsim.NewDevice(cfg.Device),
		data:   map[tensor.DataID]*texData{},
	}
	b.manager = newTextureManager(b.device, cfg.Recycling)
	b.initKernels()
	return b
}

// Name implements kernels.Backend.
func (b *Backend) Name() string { return "webgl" }

// Device exposes the simulated device for tests and benchmarks.
func (b *Backend) Device() *glsim.Device { return b.device }

// Config returns the backend configuration.
func (b *Backend) Config() Config { return b.cfg }

// Epsilon returns the global numeric epsilon adjusted to the device's
// float precision. On 16-bit devices 1e-8 is not representable and would
// silently round to zero — the log(x+ε) bug of Section 4.1.3 — so the
// backend raises it to 1e-4, exactly as TensorFlow.js does.
func (b *Backend) Epsilon() float64 {
	if b.cfg.Device.HalfFloatOnly {
		return 1e-4
	}
	return 1e-7
}

func (b *Backend) format() glsim.TextureFormat {
	if b.cfg.Packed {
		return glsim.RGBA32F
	}
	return glsim.R32F
}

// newTexData allocates the texture for a container of the given logical
// shape and registers it. It may trigger paging of colder containers.
func (b *Backend) newTexData(id tensor.DataID, shape []int, dtype tensor.DataType) (*texData, error) {
	size := tensor.ShapeSize(shape)
	w, h, err := texShape(size, b.cfg.Packed, b.cfg.Device.MaxTextureSize)
	if err != nil {
		return nil, err
	}
	tex, err := b.manager.acquire(w, h, b.format())
	if err != nil {
		return nil, err
	}
	td := &texData{
		id:      id,
		shape:   tensor.CopyShape(shape),
		dtype:   dtype,
		size:    size,
		tex:     tex,
		packed:  b.cfg.Packed,
		lastUse: b.useTick.Add(1),
	}
	b.mu.Lock()
	if _, dup := b.data[id]; dup {
		b.mu.Unlock()
		b.manager.release(tex)
		return nil, fmt.Errorf("webgl: duplicate write for data id %d", id)
	}
	b.data[id] = td
	b.bytes += td.bytes()
	b.mu.Unlock()

	b.maybePage(td)
	return td, nil
}

// Write implements kernels.Backend.
func (b *Backend) Write(d tensor.DataID, values []float32, shape []int, dtype tensor.DataType) {
	td, err := b.newTexData(d, shape, dtype)
	if err != nil {
		panic(&core.OpError{Kernel: "webgl.Write", Err: err})
	}
	vals := make([]float32, len(values))
	copy(vals, values)
	b.device.Upload(td.tex, vals)
}

// lookup returns the container record for d.
func (b *Backend) lookup(d tensor.DataID) *texData {
	b.mu.Lock()
	td, ok := b.data[d]
	b.mu.Unlock()
	if !ok {
		//lint:ignore operr engine-invariant corruption (lookup of unregistered data id); no kernel to attribute
		panic(fmt.Sprintf("webgl: unknown data id %d", d))
	}
	return td
}

// touch refreshes a container's LRU tick and pages it back onto the device
// if needed. It returns the live texture.
func (b *Backend) touch(td *texData) *glsim.Texture {
	td.lastUse = b.useTick.Add(1)
	if td.tex != nil {
		return td.tex
	}
	// Page back in (Section 4.1.2).
	w, h, err := texShape(td.size, td.packed, b.cfg.Device.MaxTextureSize)
	if err != nil {
		panic(&core.OpError{Kernel: "webgl.PageIn", Err: err})
	}
	format := glsim.R32F
	if td.packed {
		format = glsim.RGBA32F
	}
	tex, err := b.manager.acquire(w, h, format)
	if err != nil {
		panic(&core.OpError{Kernel: "webgl.PageIn", Err: err})
	}
	b.device.Upload(tex, td.paged)
	td.tex = tex
	b.pagedBytes.Add(-td.bytes())
	td.paged = nil
	b.pageIns.Add(1)
	if hub := telemetry.Default(); hub.Active() {
		hub.Emit(telemetry.Event{
			Kind: telemetry.KindPageIn, Name: "page_in",
			Backend: "webgl", Bytes: td.bytes(),
		})
	}
	return tex
}

// maybePage pages out least-recently-used containers while device texture
// memory exceeds the configured threshold. The container passed in (the
// one just allocated) is never selected. Paging is skipped entirely when
// disabled — the behaviour for "users that explicitly manage memory"
// (Section 4.1.2).
func (b *Backend) maybePage(justAllocated *texData) {
	if !b.cfg.PagingEnabled {
		return
	}
	if b.device.TextureBytes() <= b.cfg.PagingThresholdBytes {
		return
	}
	// First give back recycled-but-idle textures.
	b.manager.drainFree()
	if b.device.TextureBytes() <= b.cfg.PagingThresholdBytes {
		return
	}
	// Collect resident candidates, oldest first.
	b.mu.Lock()
	candidates := make([]*texData, 0, len(b.data))
	for _, td := range b.data {
		if td != justAllocated && td.tex != nil {
			candidates = append(candidates, td)
		}
	}
	b.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].lastUse < candidates[j].lastUse })
	// Keep the handful of most-recently-used containers resident: they
	// are the likely inputs of the op being dispatched. Page-out itself
	// drains the command queue first (ReadPixels), so pending programs
	// never lose textures.
	const keepResident = 4
	limit := len(candidates) - keepResident
	for i := 0; i < limit; i++ {
		if b.device.TextureBytes() <= b.cfg.PagingThresholdBytes {
			break
		}
		b.pageOut(candidates[i])
	}
}

// pageOut moves one container to host memory: synchronous readback, then
// the texture is deleted (not recycled — the point is to free device
// memory).
func (b *Backend) pageOut(td *texData) {
	start := time.Now()
	vals := b.device.ReadPixels(td.tex)
	td.paged = vals[:td.size]
	b.device.DeleteTexture(td.tex)
	td.tex = nil
	b.pagedBytes.Add(td.bytes())
	b.pageOuts.Add(1)
	if hub := telemetry.Default(); hub.Active() {
		hub.Emit(telemetry.Event{
			Kind: telemetry.KindPageOut, Name: "page_out",
			Backend: "webgl", Start: start,
			DurMS: float64(time.Since(start)) / float64(time.Millisecond),
			Bytes: td.bytes(),
		})
	}
}

// ReadSync implements kernels.Backend: it blocks until all pending device
// work completes (gl.readPixels; Figure 2), then decodes the values.
func (b *Backend) ReadSync(d tensor.DataID) []float32 {
	td := b.lookup(d)
	b.mu.Lock()
	if td.tex == nil {
		out := make([]float32, td.size)
		copy(out, td.paged)
		b.mu.Unlock()
		return out
	}
	tex := td.tex
	td.lastUse = b.useTick.Add(1)
	b.mu.Unlock()
	vals := b.device.ReadPixels(tex)
	return vals[:td.size]
}

// Read implements kernels.Backend: the asynchronous download of Section
// 4.1.1. On WebGL 2 devices it inserts a fence (gl.fenceSync) and resolves
// when the fence fires; on WebGL 1 devices it polls the
// EXT_disjoint_timer_query done bit. Either way the caller's goroutine —
// the "main thread" — is never blocked (Figure 3).
func (b *Backend) Read(d tensor.DataID) *jsenv.Future[[]float32] {
	td := b.lookup(d)
	fut := jsenv.NewFuture[[]float32]()
	b.mu.Lock()
	if td.tex == nil {
		out := make([]float32, td.size)
		copy(out, td.paged)
		b.mu.Unlock()
		go fut.Resolve(out, nil)
		return fut
	}
	tex := td.tex
	td.lastUse = b.useTick.Add(1)
	b.mu.Unlock()

	finish := func() {
		defer func() {
			if r := recover(); r != nil {
				fut.Resolve(nil, fmt.Errorf("webgl: async read: %v", r))
			}
		}()
		vals := b.device.ReadPixels(tex)
		fut.Resolve(vals[:td.size], nil)
	}

	if b.cfg.Device.WebGLVersion >= 2 {
		fence := b.device.FenceSync()
		issued := time.Now()
		go func() {
			<-fence
			if hub := telemetry.Default(); hub.Active() {
				// The fence event records how long the device took to
				// signal — the async-readback latency of §4.1.1.
				hub.Emit(telemetry.Event{
					Kind: telemetry.KindFence, Name: "fenceSync",
					Backend: "webgl", Start: issued,
					DurMS: float64(time.Since(issued)) / float64(time.Millisecond),
				})
			}
			finish()
		}()
		return fut
	}
	// WebGL 1: poll the disjoint-timer-query bit.
	q := b.device.BeginQuery()
	b.device.EndQuery(q)
	go func() {
		for !q.Done() {
			time.Sleep(100 * time.Microsecond)
		}
		finish()
	}()
	return fut
}

// DisposeData implements kernels.Backend. The texture goes back to the
// recycler rather than being deleted (Section 4.1.2).
func (b *Backend) DisposeData(d tensor.DataID) {
	b.mu.Lock()
	td, ok := b.data[d]
	if ok {
		delete(b.data, d)
		b.bytes -= td.bytes()
	}
	b.mu.Unlock()
	if !ok {
		return
	}
	if td.tex != nil {
		b.manager.release(td.tex)
		td.tex = nil
	}
	if td.paged != nil {
		b.pagedBytes.Add(-td.bytes())
		td.paged = nil
	}
}

// Memory implements kernels.Backend.
func (b *Backend) Memory() kernels.MemoryInfo {
	b.mu.Lock()
	numBufs := len(b.data)
	bytes := b.bytes
	b.mu.Unlock()
	return kernels.MemoryInfo{
		NumBuffers:   numBufs,
		NumBytes:     bytes,
		NumTextures:  b.device.NumTextures(),
		TextureBytes: b.device.TextureBytes(),
		FreeTextures: b.manager.freeCount(),
		PagedBytes:   b.pagedBytes.Load(),
		Unreliable:   false,
	}
}

// PagingStats reports page-out / page-in counts for tests.
func (b *Backend) PagingStats() (outs, ins int64) {
	return b.pageOuts.Load(), b.pageIns.Load()
}

// DeviceMemory renders the backend's device-side memory picture for leak
// diagnostics: texture residency, recycler occupancy (free textures
// awaiting reuse, §4.1.2) and paging pressure (bytes parked on the host
// plus page-out/in counts and the device's texture high-water mark).
func (b *Backend) DeviceMemory() *telemetry.DeviceMemory {
	return &telemetry.DeviceMemory{
		Backend:          b.Name(),
		NumTextures:      b.device.NumTextures(),
		TextureBytes:     b.device.TextureBytes(),
		FreeTextures:     b.manager.freeCount(),
		PagedBytes:       b.pagedBytes.Load(),
		PageOuts:         b.pageOuts.Load(),
		PageIns:          b.pageIns.Load(),
		PeakTextureBytes: b.device.PeakTextureBytes(),
	}
}

// RecyclingStats reports texture acquisitions and recycle hits.
func (b *Backend) RecyclingStats() (acquires, hits int64) { return b.manager.stats() }

// Time implements kernels.Backend. KernelMS is the device-measured GPU
// program time, excluding upload and download (Section 3.8: "the WebGL
// backend measures the exact GPU time").
func (b *Backend) Time(f func()) kernels.TimeInfo {
	b.device.BeginTiming()
	start := time.Now()
	f()
	kernelMS := b.device.EndTiming()
	return kernels.TimeInfo{
		WallMS:      float64(time.Since(start)) / float64(time.Millisecond),
		KernelMS:    kernelMS,
		HasKernelMS: true,
	}
}

// Close implements kernels.Backend.
func (b *Backend) Close() {
	b.manager.drainFree()
	b.device.Close()
}

// KernelOverride implements kernels.Overrider.
func (b *Backend) KernelOverride(name string) (kernels.OverrideKernel, bool) {
	k, ok := b.kernelsTable[name]
	return k, ok
}

var (
	_ kernels.Backend   = (*Backend)(nil)
	_ kernels.Overrider = (*Backend)(nil)
)
