package webgl_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/webgl"
)

func init() {
	e := core.Global()
	e.RegisterBackend("cpu", func() (kernels.Backend, error) { return cpu.New(), nil })
	e.RegisterBackend("webgl", func() (kernels.Backend, error) { return webgl.New(webgl.DefaultConfig()), nil })

	unpacked := webgl.DefaultConfig()
	unpacked.Packed = false
	e.RegisterBackend("webgl-unpacked", func() (kernels.Backend, error) { return webgl.New(unpacked), nil })

	nosqueeze := webgl.DefaultConfig()
	nosqueeze.SqueezeLogicalShapes = false
	e.RegisterBackend("webgl-nosqueeze", func() (kernels.Backend, error) { return webgl.New(nosqueeze), nil })

	v1 := webgl.DefaultConfig()
	v1.Device.WebGLVersion = 1
	e.RegisterBackend("webgl1", func() (kernels.Backend, error) { return webgl.New(v1), nil })
}

func setBackend(t testing.TB, name string) {
	t.Helper()
	if err := core.Global().SetBackend(name); err != nil {
		t.Fatalf("SetBackend(%q): %v", name, err)
	}
	t.Cleanup(func() {
		if err := core.Global().SetBackend("cpu"); err != nil {
			t.Fatalf("restore backend: %v", err)
		}
	})
}

func almostEqual(t *testing.T, got, want []float32, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length mismatch got %d want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := float64(got[i]), float64(want[i])
		if math.IsNaN(g) && math.IsNaN(w) {
			continue
		}
		if math.Abs(g-w) > tol+tol*math.Abs(w) {
			t.Fatalf("%s: element %d: got %g want %g", label, i, got[i], want[i])
		}
	}
}

// runCase evaluates fn on the cpu backend and on the named webgl variant
// and compares results element-wise.
func runCase(t *testing.T, backend, label string, fn func() *tensor.Tensor) {
	t.Helper()
	e := core.Global()
	if err := e.SetBackend("cpu"); err != nil {
		t.Fatal(err)
	}
	var want []float32
	var wantShape []int
	e.Tidy("cpu-"+label, func() []*tensor.Tensor {
		out := fn()
		want = out.DataSync()
		wantShape = tensor.CopyShape(out.Shape)
		return nil
	})
	if err := e.SetBackend(backend); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.SetBackend("cpu"); err != nil {
			t.Fatal(err)
		}
	}()
	var got []float32
	var gotShape []int
	e.Tidy("webgl-"+label, func() []*tensor.Tensor {
		out := fn()
		got = out.DataSync()
		gotShape = tensor.CopyShape(out.Shape)
		return nil
	})
	if !tensor.ShapesEqual(gotShape, wantShape) {
		t.Fatalf("%s on %s: shape mismatch got %v want %v", label, backend, gotShape, wantShape)
	}
	almostEqual(t, got, want, 2e-5, label+" on "+backend)
}

func randT(rng *rand.Rand, shape ...int) []float32 {
	vals := make([]float32, tensor.ShapeSize(shape))
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	return vals
}

func TestWebGLKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	av := randT(rng, 2, 3, 4)
	bv := randT(rng, 2, 3, 4)
	cv := randT(rng, 3, 1) // broadcast operand
	mv := randT(rng, 5, 7)
	nv := randT(rng, 7, 6)
	xv := randT(rng, 2, 9, 9, 3)
	wv := randT(rng, 3, 3, 3, 4)
	dwv := randT(rng, 3, 3, 3, 2)

	cases := map[string]func() *tensor.Tensor{
		"add":      func() *tensor.Tensor { return ops.Add(ops.FromValues(av, 2, 3, 4), ops.FromValues(bv, 2, 3, 4)) },
		"addBcast": func() *tensor.Tensor { return ops.Add(ops.FromValues(av, 2, 3, 4), ops.FromValues(cv, 3, 1)) },
		"mul":      func() *tensor.Tensor { return ops.Mul(ops.FromValues(av, 2, 3, 4), ops.FromValues(bv, 2, 3, 4)) },
		"div": func() *tensor.Tensor {
			return ops.Div(ops.FromValues(av, 2, 3, 4), ops.AddScalar(ops.Abs(ops.FromValues(bv, 2, 3, 4)), 1))
		},
		"relu":    func() *tensor.Tensor { return ops.Relu(ops.FromValues(av, 2, 3, 4)) },
		"relu6":   func() *tensor.Tensor { return ops.Relu6(ops.MulScalar(ops.FromValues(av, 2, 3, 4), 5)) },
		"sigmoid": func() *tensor.Tensor { return ops.Sigmoid(ops.FromValues(av, 2, 3, 4)) },
		"tanh":    func() *tensor.Tensor { return ops.Tanh(ops.FromValues(av, 2, 3, 4)) },
		"exp":     func() *tensor.Tensor { return ops.Exp(ops.FromValues(av, 2, 3, 4)) },
		"sqrtAbs": func() *tensor.Tensor { return ops.Sqrt(ops.Abs(ops.FromValues(av, 2, 3, 4))) },
		"clip":    func() *tensor.Tensor { return ops.ClipByValue(ops.FromValues(av, 2, 3, 4), -0.5, 0.5) },
		"greater": func() *tensor.Tensor { return ops.Greater(ops.FromValues(av, 2, 3, 4), ops.FromValues(bv, 2, 3, 4)) },
		"where": func() *tensor.Tensor {
			a := ops.FromValues(av, 2, 3, 4)
			b := ops.FromValues(bv, 2, 3, 4)
			return ops.Where(ops.Greater(a, b), a, b)
		},
		"matmul": func() *tensor.Tensor {
			return ops.MatMul(ops.FromValues(mv, 5, 7), ops.FromValues(nv, 7, 6), false, false)
		},
		"matmulTA": func() *tensor.Tensor {
			return ops.MatMul(ops.FromValues(mv, 5, 7), ops.FromValues(randT(rand.New(rand.NewSource(3)), 5, 6), 5, 6), true, false)
		},
		"matmulTB": func() *tensor.Tensor {
			return ops.MatMul(ops.FromValues(mv, 5, 7), ops.FromValues(randT(rand.New(rand.NewSource(4)), 6, 7), 6, 7), false, true)
		},
		"conv2d": func() *tensor.Tensor {
			return ops.Conv2D(ops.FromValues(xv, 2, 9, 9, 3), ops.FromValues(wv, 3, 3, 3, 4), ops.ConvOpts{Strides: []int{2, 2}, Pad: "same"})
		},
		"conv2dV": func() *tensor.Tensor {
			return ops.Conv2D(ops.FromValues(xv, 2, 9, 9, 3), ops.FromValues(wv, 3, 3, 3, 4), ops.ConvOpts{Strides: []int{1, 1}, Pad: "valid"})
		},
		"depthwise": func() *tensor.Tensor {
			return ops.DepthwiseConv2D(ops.FromValues(xv, 2, 9, 9, 3), ops.FromValues(dwv, 3, 3, 3, 2), ops.ConvOpts{Strides: []int{1, 1}, Pad: "same"})
		},
		"maxpool": func() *tensor.Tensor {
			return ops.MaxPool(ops.FromValues(xv, 2, 9, 9, 3), ops.PoolOpts{FilterSize: []int{2, 2}, Strides: []int{2, 2}, Pad: "same"})
		},
		"avgpool": func() *tensor.Tensor {
			return ops.AvgPool(ops.FromValues(xv, 2, 9, 9, 3), ops.PoolOpts{FilterSize: []int{3, 3}, Strides: []int{1, 1}, Pad: "valid"})
		},
		"sumAll":    func() *tensor.Tensor { return ops.Sum(ops.FromValues(av, 2, 3, 4), nil, false) },
		"sumAxis":   func() *tensor.Tensor { return ops.Sum(ops.FromValues(av, 2, 3, 4), []int{1}, false) },
		"meanKeep":  func() *tensor.Tensor { return ops.Mean(ops.FromValues(av, 2, 3, 4), []int{0, 2}, true) },
		"maxAxis":   func() *tensor.Tensor { return ops.Max(ops.FromValues(av, 2, 3, 4), []int{2}, false) },
		"argmax":    func() *tensor.Tensor { return ops.ArgMax(ops.FromValues(av, 2, 3, 4), 2) },
		"softmax":   func() *tensor.Tensor { return ops.Softmax(ops.FromValues(mv, 5, 7)) },
		"transpose": func() *tensor.Tensor { return ops.Transpose(ops.FromValues(av, 2, 3, 4), 2, 0, 1) },
		"reshape":   func() *tensor.Tensor { return ops.Reshape(ops.FromValues(av, 2, 3, 4), 4, 6) },
		"pad":       func() *tensor.Tensor { return ops.Pad(ops.FromValues(mv, 5, 7), [][2]int{{1, 2}, {0, 3}}, 0.5) },
		"slice":     func() *tensor.Tensor { return ops.Slice(ops.FromValues(av, 2, 3, 4), []int{0, 1, 1}, []int{2, 2, -1}) },
		"concat": func() *tensor.Tensor {
			return ops.Concat([]*tensor.Tensor{ops.FromValues(mv, 5, 7), ops.FromValues(mv, 5, 7)}, 1)
		},
		"batchnorm": func() *tensor.Tensor {
			x := ops.FromValues(xv, 2, 9, 9, 3)
			mean := ops.FromValues([]float32{0.1, -0.2, 0.3}, 3)
			variance := ops.FromValues([]float32{1, 2, 0.5}, 3)
			offset := ops.FromValues([]float32{0, 0.5, -0.5}, 3)
			scale := ops.FromValues([]float32{1, 0.7, 1.3}, 3)
			return ops.BatchNorm(x, mean, variance, offset, scale, 1e-3)
		},
		"squeezy1x3x1x2": func() *tensor.Tensor {
			// The 1x3x1x2 example of Section 4.1's mapping optimization.
			x := ops.FromValues(randT(rand.New(rand.NewSource(5)), 1, 3, 1, 2), 1, 3, 1, 2)
			y := ops.FromValues(randT(rand.New(rand.NewSource(6)), 1, 3, 1, 2), 1, 3, 1, 2)
			return ops.Add(ops.Mul(x, y), x)
		},
		"fill": func() *tensor.Tensor { return ops.Fill([]int{3, 5}, 2.5) },
		"gather": func() *tensor.Tensor {
			idx := ops.FromValuesTyped([]float32{2, 0, 1, 2}, []int{4}, tensor.Int32)
			return ops.Gather(ops.FromValues(mv, 5, 7), idx, 0)
		},
		"onehot": func() *tensor.Tensor {
			idx := ops.FromValuesTyped([]float32{1, 3, 0}, []int{3}, tensor.Int32)
			return ops.OneHot(idx, 5)
		},
		"tile": func() *tensor.Tensor {
			return ops.Tile(ops.FromValues(mv, 5, 7), []int{2, 3})
		},
		"conv2dDilated": func() *tensor.Tensor {
			return ops.Conv2D(ops.FromValues(xv, 2, 9, 9, 3), ops.FromValues(wv, 3, 3, 3, 4),
				ops.ConvOpts{Strides: []int{1, 1}, Dilations: []int{2, 2}, Pad: "same"})
		},
	}
	for _, backend := range []string{"webgl", "webgl-unpacked", "webgl-nosqueeze"} {
		for name, fn := range cases {
			t.Run(backend+"/"+name, func(t *testing.T) { runCase(t, backend, name, fn) })
		}
	}
}

func TestAsyncReadReleasesCaller(t *testing.T) {
	setBackend(t, "webgl")
	e := core.Global()
	e.Tidy("async", func() []*tensor.Tensor {
		a := ops.Fill([]int{256, 256}, 1)
		b := ops.MatMul(a, a, false, false)
		fut := b.Data()
		vals, err := fut.Await()
		if err != nil {
			t.Fatalf("async read: %v", err)
		}
		if vals[0] != 256 {
			t.Fatalf("got %g want 256", vals[0])
		}
		return nil
	})
}

func TestWebGL1PollingRead(t *testing.T) {
	setBackend(t, "webgl1")
	e := core.Global()
	e.Tidy("poll", func() []*tensor.Tensor {
		a := ops.Fill([]int{64, 64}, 2)
		b := ops.Mul(a, a)
		vals, err := b.Data().Await()
		if err != nil {
			t.Fatalf("webgl1 read: %v", err)
		}
		if vals[0] != 4 {
			t.Fatalf("got %g want 4", vals[0])
		}
		return nil
	})
}

func TestTextureRecycling(t *testing.T) {
	cfg := webgl.DefaultConfig()
	b := webgl.New(cfg)
	defer b.Close()
	e := core.NewEngine()
	e.RegisterBackend("webgl-local", func() (kernels.Backend, error) { return b, nil })
	if err := e.SetBackend("webgl-local"); err != nil {
		t.Fatal(err)
	}
	// Repeated same-shape passes should hit the recycler after warmup.
	for i := 0; i < 10; i++ {
		id := tensor.NewDataID()
		b.Write(id, make([]float32, 64*64), []int{64, 64}, tensor.Float32)
		b.DisposeData(id)
	}
	acquires, hits := b.RecyclingStats()
	if hits < 8 {
		t.Fatalf("expected >=8 recycle hits out of %d acquires, got %d", acquires, hits)
	}
	created := b.Device().Stats().TexturesCreated
	if created > 2 {
		t.Fatalf("expected at most 2 texture creations with recycling, got %d", created)
	}
}

func TestPagingAvoidsOOM(t *testing.T) {
	cfg := webgl.DefaultConfig()
	cfg.PagingThresholdBytes = 1 << 20 // 1 MiB budget
	cfg.Recycling = false
	b := webgl.New(cfg)
	defer b.Close()

	// Allocate ~4 MiB of tensors: without paging this would exceed the
	// device budget; with paging, device memory stays bounded and all
	// values remain readable.
	const n = 64
	ids := make([]tensor.DataID, n)
	for i := 0; i < n; i++ {
		vals := make([]float32, 64*1024/4) // 64 KiB each
		for j := range vals {
			vals[j] = float32(i)
		}
		ids[i] = tensor.NewDataID()
		b.Write(ids[i], vals, []int{len(vals)}, tensor.Float32)
	}
	outs, _ := b.PagingStats()
	if outs == 0 {
		t.Fatal("expected page-outs above the memory threshold")
	}
	// Every tensor still reads back correctly, including paged ones.
	for i := 0; i < n; i++ {
		vals := b.ReadSync(ids[i])
		if vals[0] != float32(i) || vals[len(vals)-1] != float32(i) {
			t.Fatalf("tensor %d corrupted after paging: got %g", i, vals[0])
		}
	}
	if got := b.Memory().TextureBytes; got > 4<<20 {
		t.Fatalf("device memory %d far exceeds threshold despite paging", got)
	}
}

func TestEpsilonAdjustmentFP16(t *testing.T) {
	// On a 16-bit device, 1e-8 rounds to zero: log(x + 1e-8) at x=0 is
	// -Inf — the Android bug of Section 4.1.3. The adjusted epsilon
	// (1e-4) survives fp16 rounding.
	if glsim.RoundToFloat16(1e-8) != 0 {
		t.Fatal("1e-8 should round to zero in fp16")
	}
	if glsim.RoundToFloat16(1e-4) == 0 {
		t.Fatal("1e-4 must be representable in fp16")
	}

	cfg := webgl.DefaultConfig()
	cfg.Device.HalfFloatOnly = true
	b := webgl.New(cfg)
	defer b.Close()
	if b.Epsilon() != 1e-4 {
		t.Fatalf("fp16 device epsilon = %g, want 1e-4", b.Epsilon())
	}
	full := webgl.New(webgl.DefaultConfig())
	defer full.Close()
	if full.Epsilon() != 1e-7 {
		t.Fatalf("fp32 device epsilon = %g, want 1e-7", full.Epsilon())
	}

	// Demonstrate the failure mode end to end on the fp16 device: write
	// the naive epsilon, observe it vanish.
	id := tensor.NewDataID()
	b.Write(id, []float32{1e-8}, []int{1}, tensor.Float32)
	if got := b.ReadSync(id)[0]; got != 0 {
		t.Fatalf("fp16 texture stored 1e-8 as %g, want 0", got)
	}
	id2 := tensor.NewDataID()
	b.Write(id2, []float32{1e-4}, []int{1}, tensor.Float32)
	if got := b.ReadSync(id2)[0]; got == 0 {
		t.Fatal("fp16 texture must represent 1e-4")
	}
}

func TestFig4ElementwiseAddShader(t *testing.T) {
	// Figure 4: the addition of two equally shaped matrices executed by
	// the WebGL backend — main() runs per output value, in parallel.
	setBackend(t, "webgl")
	e := core.Global()
	dev := func() *glsim.Device {
		b, _ := e.Backend().(*webgl.Backend)
		return b.Device()
	}()
	before := dev.Stats()
	e.Tidy("fig4", func() []*tensor.Tensor {
		a := ops.FromValues([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
		b := ops.FromValues([]float32{10, 20, 30, 40, 50, 60}, 2, 3)
		c := ops.Add(a, b)
		almostEqual(t, c.DataSync(), []float32{11, 22, 33, 44, 55, 66}, 0, "fig4 add")
		return nil
	})
	after := dev.Stats()
	if after.ProgramsExecuted <= before.ProgramsExecuted {
		t.Fatal("expected the addition to execute as a device program")
	}
}
