package webgl_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/webgl"
)

// TestFallbackKernelsOnWebGL exercises ops with no shader program: the
// engine must read the inputs back from the device, run the reference
// kernel, and upload the result — transparently.
func TestFallbackKernelsOnWebGL(t *testing.T) {
	setBackend(t, "webgl")
	e := core.Global()
	e.Tidy("fallback", func() []*tensor.Tensor {
		// CumSum and Reverse have no webgl overrides and run through the
		// reference path; Gather/Tile have device programs — both paths
		// must agree on a mixed pipeline.
		x := ops.FromValues([]float32{10, 11, 20, 21, 30, 31}, 3, 2)
		idx := ops.FromValuesTyped([]float32{2, 0}, []int{2}, tensor.Int32)
		g := ops.Gather(x, idx, 0)
		almostEqual(t, g.DataSync(), []float32{30, 31, 10, 11}, 0, "gather program")

		tiled := ops.Tile(ops.FromValues([]float32{1, 2}, 2), []int{3})
		almostEqual(t, tiled.DataSync(), []float32{1, 2, 1, 2, 1, 2}, 0, "tile program")

		cum := ops.CumSum(ops.FromValues([]float32{1, 2, 3, 4}, 1, 4), 1, false, false)
		almostEqual(t, cum.DataSync(), []float32{1, 3, 6, 10}, 0, "cumsum fallback")

		rev := ops.Reverse(ops.FromValues([]float32{1, 2, 3}, 3), 0)
		almostEqual(t, rev.DataSync(), []float32{3, 2, 1}, 0, "reverse fallback")

		// A mixed pipeline: fallback output feeds a shader program.
		y := ops.Relu(ops.SubScalar(g, 15))
		almostEqual(t, y.DataSync(), []float32{15, 16, 0, 0}, 0, "fallback into program")
		return nil
	})
}

// TestTrainingOnWebGL runs a full optimizer step on the webgl backend:
// gradients flow through shader programs and fallback kernels alike —
// the in-browser training the paper calls its major differentiator.
func TestTrainingOnWebGL(t *testing.T) {
	setBackend(t, "webgl")
	e := core.Global()
	init := ops.FromValues([]float32{0, 0}, 2)
	w := e.NewVariable(init, "webgl_w", true)
	init.Dispose()
	defer w.Dispose()

	x := ops.FromValues([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	target := ops.FromValues([]float32{5, 11, 17}, 3) // w = [1, 2]
	defer x.Dispose()
	defer target.Dispose()

	var loss float32
	for i := 0; i < 1000; i++ {
		e.Tidy("step", func() []*tensor.Tensor {
			res := e.VariableGrads(func() *tensor.Tensor {
				pred := ops.Reshape(ops.MatMul(x, ops.Reshape(w.Value(), 2, 1), false, false), 3)
				diff := ops.Sub(pred, target)
				return ops.Mean(ops.Mul(diff, diff), nil, false)
			}, []*core.Variable{w})
			loss = res.Value.DataSync()[0]
			w.Assign(ops.Sub(w.Value(), ops.MulScalar(res.Grads[w], 0.02)))
			return nil
		})
	}
	if loss > 1e-3 {
		t.Fatalf("webgl training did not converge: loss=%g w=%v", loss, w.Value().DataSync())
	}
	got := w.Value().DataSync()
	if math.Abs(float64(got[0])-1) > 0.05 || math.Abs(float64(got[1])-2) > 0.05 {
		t.Fatalf("learned w = %v, want [1 2]", got)
	}
}

// TestFP16ComputePipeline runs a computation on a 16-bit-float device and
// checks the results carry half precision (values rounded through fp16 at
// every store).
func TestFP16ComputePipeline(t *testing.T) {
	cfg := webgl.DefaultConfig()
	cfg.Device.HalfFloatOnly = true
	e := core.Global()
	e.RegisterBackend("webgl-fp16", func() (kernels.Backend, error) { return webgl.New(cfg), nil })
	setBackend(t, "webgl-fp16")

	e.Tidy("fp16", func() []*tensor.Tensor {
		x := ops.FromValues([]float32{1.0001, 2.0002, 3.0003}, 3)
		y := ops.AddScalar(x, 0)
		got := y.DataSync()
		for i, v := range got {
			want := glsim.RoundToFloat16(glsim.RoundToFloat16(x.DataSync()[i]))
			if v != want {
				t.Fatalf("element %d: %g not fp16-rounded (want %g)", i, v, want)
			}
		}
		// The epsilon failure mode: adding 1e-8 on fp16 is a no-op.
		tiny := ops.AddScalar(ops.Zeros(1), 1e-8)
		if tiny.DataSync()[0] != 0 {
			t.Fatal("1e-8 survived on a 16-bit device")
		}
		// The adjusted epsilon works.
		adjusted := ops.AddScalar(ops.Zeros(1), 1e-4)
		if adjusted.DataSync()[0] == 0 {
			t.Fatal("1e-4 vanished on a 16-bit device")
		}
		return nil
	})
}

// TestWebGLProfileKernelTime verifies tf.time semantics on the device:
// kernel time is positive and below wall time (upload/download excluded).
func TestWebGLProfileKernelTime(t *testing.T) {
	setBackend(t, "webgl")
	e := core.Global()
	ti := e.Time(func() {
		e.Tidy("timed", func() []*tensor.Tensor {
			a := ops.Fill([]int{128, 128}, 0.5)
			ops.MatMul(a, a, false, false).DataSync()
			return nil
		})
	})
	if !ti.HasKernelMS || ti.KernelMS <= 0 {
		t.Fatalf("device kernel time missing: %+v", ti)
	}
	if ti.KernelMS >= ti.WallMS {
		t.Fatalf("kernel time %.3f should exclude transfer (wall %.3f)", ti.KernelMS, ti.WallMS)
	}
}

// TestWebGLMemoryInfoFields checks the backend-specific memory counters.
func TestWebGLMemoryInfoFields(t *testing.T) {
	cfg := webgl.DefaultConfig()
	b := webgl.New(cfg)
	defer b.Close()
	id := tensor.NewDataID()
	b.Write(id, make([]float32, 1024), []int{32, 32}, tensor.Float32)
	mem := b.Memory()
	if mem.NumBuffers != 1 || mem.NumTextures != 1 || mem.TextureBytes == 0 {
		t.Fatalf("memory info %+v", mem)
	}
	b.DisposeData(id)
	mem = b.Memory()
	if mem.NumBuffers != 0 {
		t.Fatalf("buffer not released: %+v", mem)
	}
	// The texture went to the recycler, not back to the driver.
	if mem.FreeTextures != 1 {
		t.Fatalf("expected 1 recycled texture, got %+v", mem)
	}
}

// TestConvGradientsOnWebGL verifies that the backward convolution programs
// agree with the reference gradients, using the autodiff path end to end.
func TestConvGradientsOnWebGL(t *testing.T) {
	e := core.Global()
	grads := func(backend string) [][]float32 {
		if err := e.SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		x := ops.FromValues(seq(1*5*5*2), 1, 5, 5, 2)
		w := ops.FromValues(seq(3*3*2*3), 3, 3, 2, 3)
		dw := ops.FromValues(seq(3*3*2*2), 3, 3, 2, 2)
		defer x.Dispose()
		defer w.Dispose()
		defer dw.Dispose()
		res := e.Gradients(func() *tensor.Tensor {
			conv := ops.Conv2D(x, w, ops.ConvOpts{Strides: []int{2, 2}, Pad: "same"})
			pooled := ops.MaxPool(ops.DepthwiseConv2D(x, dw, ops.ConvOpts{Strides: []int{1, 1}, Pad: "same"}),
				ops.PoolOpts{FilterSize: []int{2, 2}, Strides: []int{1, 1}, Pad: "valid"})
			avg := ops.AvgPool(conv, ops.PoolOpts{FilterSize: []int{2, 2}, Strides: []int{1, 1}, Pad: "same"})
			return ops.Add(ops.Sum(ops.Square(pooled), nil, false), ops.Sum(avg, nil, false))
		}, []*tensor.Tensor{x, w, dw}, nil)
		out := make([][]float32, 3)
		for i, g := range res.Grads {
			out[i] = g.DataSync()
			g.Dispose()
		}
		res.Value.Dispose()
		return out
	}
	want := grads("cpu")
	got := grads("webgl")
	e.SetBackend("cpu")
	for i := range want {
		almostEqual(t, got[i], want[i], 1e-4, "conv grad input "+string(rune('0'+i)))
	}
}

// seq produces a deterministic, tie-free value pattern.
func seq(n int) []float32 {
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32((i*37)%91)/13 - 3
	}
	return vals
}

// TestDispatchIsAsync verifies the §4.1.1 scheduling claim: enqueueing an
// operation "typically takes sub-millisecond time, and [returns] a handle
// to the resulting tensor despite the computation not being done". The
// dispatch must return long before the device finishes the work.
func TestDispatchIsAsync(t *testing.T) {
	setBackend(t, "webgl")
	e := core.Global()
	e.Tidy("dispatch", func() []*tensor.Tensor {
		a := ops.Fill([]int{512, 512}, 1.0/512)
		// Let the fills complete so we time only the matmul dispatch.
		a.DataSync()

		dispatchStart := time.Now()
		x := a
		for i := 0; i < 6; i++ {
			x = ops.MatMul(x, a, false, false)
		}
		dispatch := time.Since(dispatchStart)

		syncStart := time.Now()
		x.DataSync()
		execution := time.Since(syncStart)

		if dispatch > execution {
			t.Fatalf("dispatch (%v) should be far cheaper than execution (%v)", dispatch, execution)
		}
		if execution < 2*time.Millisecond {
			t.Skipf("workload too fast to compare (%v)", execution)
		}
		if dispatch*5 > execution {
			t.Fatalf("dispatch %v not clearly asynchronous vs execution %v", dispatch, execution)
		}
		return nil
	})
}
