package webgl

import (
	"fmt"

	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// This file holds the kernel-override plumbing; the program builders for
// each kernel family live in the kernels_*.go files. Each override plays
// the role of a compiled GLSL fragment shader (Listing 2 of the paper): a
// per-output-texel function assembled from compiler-provided samplers.

// register installs one kernel override.
func (b *Backend) register(name string, k kernels.OverrideKernel) {
	if _, dup := b.kernelsTable[name]; dup {
		//lint:ignore operr init-time registration invariant (duplicate override); no dispatch in flight to attribute
		panic(fmt.Sprintf("webgl: duplicate kernel %q", name))
	}
	b.kernelsTable[name] = k
}

// initKernels builds the override table.
func (b *Backend) initKernels() {
	b.kernelsTable = map[string]kernels.OverrideKernel{}
	b.registerElementwise()
	b.registerMatMul()
	b.registerConv()
	b.registerReduce()
	b.registerShape()
	b.registerGather()
	b.registerConvGrad()
	b.registerFused()
}

// input resolves a kernel input to its live texture (paging it back in when
// needed) and refreshes its LRU tick.
func (b *Backend) input(in kernels.Input) (*texData, *glsim.Texture) {
	td := b.lookup(in.DataID)
	tex := b.touch(td)
	return td, tex
}

// output allocates a data container for a kernel result and returns its
// record plus the TensorInfo handed back to the engine.
func (b *Backend) output(shape []int, dtype tensor.DataType) (*texData, kernels.TensorInfo, error) {
	id := tensor.NewDataID()
	td, err := b.newTexData(id, shape, dtype)
	if err != nil {
		return nil, kernels.TensorInfo{}, err
	}
	return td, kernels.TensorInfo{DataID: id, Shape: tensor.CopyShape(shape), DType: dtype}, nil
}

// runFlat executes a program whose value at flat output index i is
// valueAt(i). It handles both texel layouts: with packing, one texel
// invocation produces four consecutive values (the §3.9 packing
// optimization — a quarter of the shader invocations).
func (b *Backend) runFlat(name string, out *texData, valueAt func(flat int) float32) {
	size := out.size
	var main glsim.TexelFunc
	if out.tex.Format == glsim.RGBA32F {
		main = func(texel int) [4]float32 {
			var vals [4]float32
			base := texel * 4
			for c := 0; c < 4 && base+c < size; c++ {
				vals[c] = valueAt(base + c)
			}
			return vals
		}
	} else {
		main = func(texel int) [4]float32 {
			if texel >= size {
				return [4]float32{}
			}
			return [4]float32{valueAt(texel)}
		}
	}
	b.device.Execute(&glsim.Program{Name: name, Main: main}, out.tex)
}

// runTexel executes a program with full control of the per-texel function;
// used by kernels with packed-specific fast paths.
func (b *Backend) runTexel(name string, out *texData, main glsim.TexelFunc) {
	b.device.Execute(&glsim.Program{Name: name, Main: main}, out.tex)
}

// indexTerm is one dimension's contribution when mapping an output flat
// index to an input flat index: (flat / div % dim) * stride.
type indexTerm struct {
	div    int
	dim    int
	stride int
}

// broadcastSamplers compiles, for each input shape, a mapper from output
// flat index to input flat index. This is the Go analogue of the shader
// compiler's generated getA(...) samplers: with SqueezeLogicalShapes
// enabled, size-1 output dimensions produce no term at all — the "ignores a
// and c" optimization of Section 4.1 — and stride-0 (broadcast) dimensions
// are likewise dropped.
func (b *Backend) broadcastSamplers(outShape []int, inShapes [][]int) []func(outFlat int) int {
	outStrides := tensor.ComputeStrides(outShape)
	mappers := make([]func(int) int, len(inShapes))
	for k, inShape := range inShapes {
		aligned := compileSampler(inShape, outShape, b.cfg.SqueezeLogicalShapes, nil).strides
		var terms []indexTerm
		for i, dim := range outShape {
			if b.cfg.SqueezeLogicalShapes && (dim == 1 || aligned[i] == 0) {
				continue
			}
			terms = append(terms, indexTerm{div: outStrides[i], dim: dim, stride: aligned[i]})
		}
		mappers[k] = func(outFlat int) int {
			idx := 0
			for _, t := range terms {
				idx += (outFlat / t.div % t.dim) * t.stride
			}
			return idx
		}
	}
	return mappers
}

// sameShape reports whether every input has exactly the output's shape, the
// condition for the no-decode fast path.
func sameShape(outShape []int, inShapes [][]int) bool {
	for _, s := range inShapes {
		if !tensor.ShapesEqual(s, outShape) {
			return false
		}
	}
	return true
}

// InputTexture resolves a kernel input to its live device texture, paging
// it back in when needed. Exported for backends layered on this one (the
// experimental WebGPU backend reuses the WebGL data plane).
func (b *Backend) InputTexture(in kernels.Input) *glsim.Texture {
	_, tex := b.input(in)
	return tex
}

// Output allocates a device container for a kernel result, returning its
// texture and the TensorInfo for the engine. Exported for layered backends.
func (b *Backend) Output(shape []int, dtype tensor.DataType) (*glsim.Texture, kernels.TensorInfo, error) {
	td, info, err := b.output(shape, dtype)
	if err != nil {
		return nil, kernels.TensorInfo{}, err
	}
	return td.tex, info, nil
}
