package webgl

import (
	"math"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerConv installs the convolution and pooling shader programs. Each
// output texel decodes its NHWC coordinates and walks the receptive field
// through flat-index samplers, the structure of the tf.conv2d() fragment
// shader described in Section 4.1 ("the GLSL implementation of tf.conv2d()
// uses the auto-generated getA(batch, row, column, depth) method to sample
// from a 4D tensor").
func (b *Backend) registerConv() {
	b.register("Conv2D", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("Conv2D: got %d inputs, want 2", len(inputs))
		}
		x, w := inputs[0], inputs[1]
		info, err := kernels.ComputeConv2DInfo(x.Shape, w.Shape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), false)
		if err != nil {
			return nil, err
		}
		_, xTex := b.input(x)
		_, wTex := b.input(w)
		out, tinfo, err := b.output(info.OutShape(), tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, outC := info.InChannels, info.OutChannels
		inRow := info.InWidth * inC
		inImg := info.InHeight * inRow
		b.runFlat("Conv2D", out, func(flat int) float32 {
			oc := flat % outC
			rest := flat / outC
			ox := rest % info.OutWidth
			rest /= info.OutWidth
			oy := rest % info.OutHeight
			bb := rest / info.OutHeight
			yCorner := oy*info.StrideHeight - info.PadTop
			xCorner := ox*info.StrideWidth - info.PadLeft
			var sum float32
			for fy := 0; fy < info.FilterHeight; fy++ {
				iy := yCorner + fy*info.DilationHeight
				if iy < 0 || iy >= info.InHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					ix := xCorner + fx*info.DilationWidth
					if ix < 0 || ix >= info.InWidth {
						continue
					}
					inBase := bb*inImg + iy*inRow + ix*inC
					wBase := ((fy*info.FilterWidth)+fx)*inC*outC + oc
					for ic := 0; ic < inC; ic++ {
						sum += xTex.FetchFlat(inBase+ic) * wTex.FetchFlat(wBase+ic*outC)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("DepthwiseConv2dNative", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("DepthwiseConv2dNative: got %d inputs, want 2", len(inputs))
		}
		x, w := inputs[0], inputs[1]
		info, err := kernels.ComputeConv2DInfo(x.Shape, w.Shape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), true)
		if err != nil {
			return nil, err
		}
		_, xTex := b.input(x)
		_, wTex := b.input(w)
		out, tinfo, err := b.output(info.OutShape(), tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, mult, outC := info.InChannels, info.ChannelMultiplier, info.OutChannels
		inRow := info.InWidth * inC
		inImg := info.InHeight * inRow
		b.runFlat("DepthwiseConv2dNative", out, func(flat int) float32 {
			oc := flat % outC
			rest := flat / outC
			ox := rest % info.OutWidth
			rest /= info.OutWidth
			oy := rest % info.OutHeight
			bb := rest / info.OutHeight
			ic := oc / mult
			q := oc % mult
			yCorner := oy*info.StrideHeight - info.PadTop
			xCorner := ox*info.StrideWidth - info.PadLeft
			var sum float32
			for fy := 0; fy < info.FilterHeight; fy++ {
				iy := yCorner + fy*info.DilationHeight
				if iy < 0 || iy >= info.InHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					ix := xCorner + fx*info.DilationWidth
					if ix < 0 || ix >= info.InWidth {
						continue
					}
					sum += xTex.FetchFlat(bb*inImg+iy*inRow+ix*inC+ic) *
						wTex.FetchFlat(((fy*info.FilterWidth)+fx)*inC*mult+ic*mult+q)
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	pool := func(name string, isMax bool) kernels.OverrideKernel {
		return func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
			if len(inputs) != 1 {
				return nil, errf("%s: got %d inputs, want 1", name, len(inputs))
			}
			x := inputs[0]
			filterSize := attrs.Ints("filterSize", []int{2, 2})
			strides := attrs.Ints("strides", filterSize)
			pad := attrs.String("pad", "valid")
			info, err := kernels.ComputePool2DInfo(x.Shape, filterSize, strides, pad)
			if err != nil {
				return nil, err
			}
			_, xTex := b.input(x)
			out, tinfo, err := b.output(info.OutShape(), x.DType)
			if err != nil {
				return nil, err
			}
			c := info.OutChannels
			inRow := info.InWidth * c
			inImg := info.InHeight * inRow
			b.runFlat(name, out, func(flat int) float32 {
				ch := flat % c
				rest := flat / c
				ox := rest % info.OutWidth
				rest /= info.OutWidth
				oy := rest % info.OutHeight
				bb := rest / info.OutHeight
				yCorner := oy*info.StrideHeight - info.PadTop
				xCorner := ox*info.StrideWidth - info.PadLeft
				best := float32(math.Inf(-1))
				var sum float32
				count := 0
				for fy := 0; fy < info.FilterHeight; fy++ {
					iy := yCorner + fy
					if iy < 0 || iy >= info.InHeight {
						continue
					}
					for fx := 0; fx < info.FilterWidth; fx++ {
						ix := xCorner + fx
						if ix < 0 || ix >= info.InWidth {
							continue
						}
						v := xTex.FetchFlat(bb*inImg + iy*inRow + ix*c + ch)
						if isMax {
							if v > best {
								best = v
							}
						} else {
							sum += v
							count++
						}
					}
				}
				if isMax {
					return best
				}
				if count == 0 {
					return 0
				}
				return sum / float32(count)
			})
			return []kernels.TensorInfo{tinfo}, nil
		}
	}
	b.register("MaxPool", pool("MaxPool", true))
	b.register("AvgPool", pool("AvgPool", false))
}
