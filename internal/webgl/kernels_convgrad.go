package webgl

import (
	"math"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerConvGrad installs the backward convolution and pooling programs,
// so training convolutional models stays entirely device-resident — the
// paper's headline capability of "integrated training and inference on the
// GPU from the browser". Each backward pass is expressed as a gather from
// the output-gradient texture (fragment shaders cannot scatter), the same
// formulation the real WebGL backend uses.
func (b *Backend) registerConvGrad() {
	b.register("Conv2DBackpropInput", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("Conv2DBackpropInput: got %d inputs, want 2", len(inputs))
		}
		dy, w := inputs[0], inputs[1]
		inShape := attrs.Ints("inputShape", nil)
		info, err := kernels.ComputeConv2DInfo(inShape, w.Shape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), false)
		if err != nil {
			return nil, err
		}
		if info.DilationHeight != 1 || info.DilationWidth != 1 {
			return nil, kernels.ErrFallback // dilated backprop via reference
		}
		_, dyTex := b.input(dy)
		_, wTex := b.input(w)
		out, tinfo, err := b.output(inShape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, outC := info.InChannels, info.OutChannels
		outRow := info.OutWidth * outC
		outImg := info.OutHeight * outRow
		b.runFlat("Conv2DBackpropInput", out, func(flat int) float32 {
			ic := flat % inC
			rest := flat / inC
			ix := rest % info.InWidth
			rest /= info.InWidth
			iy := rest % info.InHeight
			bb := rest / info.InHeight
			var sum float32
			// dx[iy,ix] gathers from every output position whose window
			// covered it: oy = (iy + padTop - fy) / strideH.
			for fy := 0; fy < info.FilterHeight; fy++ {
				oyNum := iy + info.PadTop - fy
				if oyNum < 0 || oyNum%info.StrideHeight != 0 {
					continue
				}
				oy := oyNum / info.StrideHeight
				if oy >= info.OutHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					oxNum := ix + info.PadLeft - fx
					if oxNum < 0 || oxNum%info.StrideWidth != 0 {
						continue
					}
					ox := oxNum / info.StrideWidth
					if ox >= info.OutWidth {
						continue
					}
					dyBase := bb*outImg + oy*outRow + ox*outC
					wBase := (fy*info.FilterWidth+fx)*inC*outC + ic*outC
					for oc := 0; oc < outC; oc++ {
						sum += dyTex.FetchFlat(dyBase+oc) * wTex.FetchFlat(wBase+oc)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("Conv2DBackpropFilter", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("Conv2DBackpropFilter: got %d inputs, want 2", len(inputs))
		}
		x, dy := inputs[0], inputs[1]
		filterShape := attrs.Ints("filterShape", nil)
		info, err := kernels.ComputeConv2DInfo(x.Shape, filterShape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), false)
		if err != nil {
			return nil, err
		}
		if info.DilationHeight != 1 || info.DilationWidth != 1 {
			return nil, kernels.ErrFallback
		}
		_, xTex := b.input(x)
		_, dyTex := b.input(dy)
		out, tinfo, err := b.output(filterShape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, outC := info.InChannels, info.OutChannels
		inRow := info.InWidth * inC
		inImg := info.InHeight * inRow
		outRow := info.OutWidth * outC
		outImg := info.OutHeight * outRow
		b.runFlat("Conv2DBackpropFilter", out, func(flat int) float32 {
			oc := flat % outC
			rest := flat / outC
			ic := rest % inC
			rest /= inC
			fx := rest % info.FilterWidth
			fy := rest / info.FilterWidth
			var sum float32
			for bb := 0; bb < info.BatchSize; bb++ {
				for oy := 0; oy < info.OutHeight; oy++ {
					iy := oy*info.StrideHeight - info.PadTop + fy
					if iy < 0 || iy >= info.InHeight {
						continue
					}
					for ox := 0; ox < info.OutWidth; ox++ {
						ix := ox*info.StrideWidth - info.PadLeft + fx
						if ix < 0 || ix >= info.InWidth {
							continue
						}
						sum += xTex.FetchFlat(bb*inImg+iy*inRow+ix*inC+ic) *
							dyTex.FetchFlat(bb*outImg+oy*outRow+ox*outC+oc)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("DepthwiseConv2dNativeBackpropInput", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("DepthwiseConv2dNativeBackpropInput: got %d inputs, want 2", len(inputs))
		}
		dy, w := inputs[0], inputs[1]
		inShape := attrs.Ints("inputShape", nil)
		info, err := kernels.ComputeConv2DInfo(inShape, w.Shape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), true)
		if err != nil {
			return nil, err
		}
		if info.DilationHeight != 1 || info.DilationWidth != 1 {
			return nil, kernels.ErrFallback
		}
		_, dyTex := b.input(dy)
		_, wTex := b.input(w)
		out, tinfo, err := b.output(inShape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, mult, outC := info.InChannels, info.ChannelMultiplier, info.OutChannels
		outRow := info.OutWidth * outC
		outImg := info.OutHeight * outRow
		b.runFlat("DepthwiseConv2dNativeBackpropInput", out, func(flat int) float32 {
			ic := flat % inC
			rest := flat / inC
			ix := rest % info.InWidth
			rest /= info.InWidth
			iy := rest % info.InHeight
			bb := rest / info.InHeight
			var sum float32
			for fy := 0; fy < info.FilterHeight; fy++ {
				oyNum := iy + info.PadTop - fy
				if oyNum < 0 || oyNum%info.StrideHeight != 0 {
					continue
				}
				oy := oyNum / info.StrideHeight
				if oy >= info.OutHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					oxNum := ix + info.PadLeft - fx
					if oxNum < 0 || oxNum%info.StrideWidth != 0 {
						continue
					}
					ox := oxNum / info.StrideWidth
					if ox >= info.OutWidth {
						continue
					}
					dyBase := bb*outImg + oy*outRow + ox*outC
					wBase := (fy*info.FilterWidth + fx) * inC * mult
					for q := 0; q < mult; q++ {
						sum += dyTex.FetchFlat(dyBase+ic*mult+q) * wTex.FetchFlat(wBase+ic*mult+q)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("DepthwiseConv2dNativeBackpropFilter", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("DepthwiseConv2dNativeBackpropFilter: got %d inputs, want 2", len(inputs))
		}
		x, dy := inputs[0], inputs[1]
		filterShape := attrs.Ints("filterShape", nil)
		info, err := kernels.ComputeConv2DInfo(x.Shape, filterShape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), true)
		if err != nil {
			return nil, err
		}
		if info.DilationHeight != 1 || info.DilationWidth != 1 {
			return nil, kernels.ErrFallback
		}
		_, xTex := b.input(x)
		_, dyTex := b.input(dy)
		out, tinfo, err := b.output(filterShape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, mult, outC := info.InChannels, info.ChannelMultiplier, info.OutChannels
		inRow := info.InWidth * inC
		inImg := info.InHeight * inRow
		outRow := info.OutWidth * outC
		outImg := info.OutHeight * outRow
		b.runFlat("DepthwiseConv2dNativeBackpropFilter", out, func(flat int) float32 {
			q := flat % mult
			rest := flat / mult
			ic := rest % inC
			rest /= inC
			fx := rest % info.FilterWidth
			fy := rest / info.FilterWidth
			var sum float32
			for bb := 0; bb < info.BatchSize; bb++ {
				for oy := 0; oy < info.OutHeight; oy++ {
					iy := oy*info.StrideHeight - info.PadTop + fy
					if iy < 0 || iy >= info.InHeight {
						continue
					}
					for ox := 0; ox < info.OutWidth; ox++ {
						ix := ox*info.StrideWidth - info.PadLeft + fx
						if ix < 0 || ix >= info.InWidth {
							continue
						}
						sum += xTex.FetchFlat(bb*inImg+iy*inRow+ix*inC+ic) *
							dyTex.FetchFlat(bb*outImg+oy*outRow+ox*outC+ic*mult+q)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("MaxPoolGrad", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("MaxPoolGrad: got %d inputs, want 2", len(inputs))
		}
		dy, x := inputs[0], inputs[1]
		filterSize := attrs.Ints("filterSize", []int{2, 2})
		strides := attrs.Ints("strides", filterSize)
		info, err := kernels.ComputePool2DInfo(x.Shape, filterSize, strides, attrs.String("pad", "valid"))
		if err != nil {
			return nil, err
		}
		_, dyTex := b.input(dy)
		_, xTex := b.input(x)
		out, tinfo, err := b.output(x.Shape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		c := info.OutChannels
		inRow := info.InWidth * c
		inImg := info.InHeight * inRow
		outRow := info.OutWidth * c
		outImg := info.OutHeight * outRow
		b.runFlat("MaxPoolGrad", out, func(flat int) float32 {
			ch := flat % c
			rest := flat / c
			ix := rest % info.InWidth
			rest /= info.InWidth
			iy := rest % info.InHeight
			bb := rest / info.InHeight
			myVal := xTex.FetchFlat(flat)
			var sum float32
			// Gather from each window that covers (iy, ix) and for which
			// this position is the (first) argmax.
			for fy := 0; fy < info.FilterHeight; fy++ {
				oyNum := iy + info.PadTop - fy
				if oyNum < 0 || oyNum%info.StrideHeight != 0 {
					continue
				}
				oy := oyNum / info.StrideHeight
				if oy >= info.OutHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					oxNum := ix + info.PadLeft - fx
					if oxNum < 0 || oxNum%info.StrideWidth != 0 {
						continue
					}
					ox := oxNum / info.StrideWidth
					if ox >= info.OutWidth {
						continue
					}
					// Find the window's argmax (first occurrence) and
					// check whether it is this position.
					best := float32(math.Inf(-1))
					bestIdx := -1
					yCorner := oy*info.StrideHeight - info.PadTop
					xCorner := ox*info.StrideWidth - info.PadLeft
					for wy := 0; wy < info.FilterHeight; wy++ {
						yy := yCorner + wy
						if yy < 0 || yy >= info.InHeight {
							continue
						}
						for wx := 0; wx < info.FilterWidth; wx++ {
							xx := xCorner + wx
							if xx < 0 || xx >= info.InWidth {
								continue
							}
							idx := bb*inImg + yy*inRow + xx*c + ch
							if v := xTex.FetchFlat(idx); v > best {
								best = v
								bestIdx = idx
							}
						}
					}
					if bestIdx == flat && myVal == best {
						sum += dyTex.FetchFlat(bb*outImg + oy*outRow + ox*c + ch)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("AvgPoolGrad", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("AvgPoolGrad: got %d inputs, want 1", len(inputs))
		}
		dy := inputs[0]
		inShape := attrs.Ints("inputShape", nil)
		filterSize := attrs.Ints("filterSize", []int{2, 2})
		strides := attrs.Ints("strides", filterSize)
		info, err := kernels.ComputePool2DInfo(inShape, filterSize, strides, attrs.String("pad", "valid"))
		if err != nil {
			return nil, err
		}
		_, dyTex := b.input(dy)
		out, tinfo, err := b.output(inShape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		c := info.OutChannels
		outRow := info.OutWidth * c
		outImg := info.OutHeight * outRow
		b.runFlat("AvgPoolGrad", out, func(flat int) float32 {
			ch := flat % c
			rest := flat / c
			ix := rest % info.InWidth
			rest /= info.InWidth
			iy := rest % info.InHeight
			bb := rest / info.InHeight
			var sum float32
			for fy := 0; fy < info.FilterHeight; fy++ {
				oyNum := iy + info.PadTop - fy
				if oyNum < 0 || oyNum%info.StrideHeight != 0 {
					continue
				}
				oy := oyNum / info.StrideHeight
				if oy >= info.OutHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					oxNum := ix + info.PadLeft - fx
					if oxNum < 0 || oxNum%info.StrideWidth != 0 {
						continue
					}
					ox := oxNum / info.StrideWidth
					if ox >= info.OutWidth {
						continue
					}
					// The window's in-bounds cell count (padding cells
					// are excluded from the forward average).
					yCorner := oy*info.StrideHeight - info.PadTop
					xCorner := ox*info.StrideWidth - info.PadLeft
					count := 0
					for wy := 0; wy < info.FilterHeight; wy++ {
						yy := yCorner + wy
						if yy < 0 || yy >= info.InHeight {
							continue
						}
						for wx := 0; wx < info.FilterWidth; wx++ {
							xx := xCorner + wx
							if xx >= 0 && xx < info.InWidth {
								count++
							}
						}
					}
					if count > 0 {
						sum += dyTex.FetchFlat(bb*outImg+oy*outRow+ox*c+ch) / float32(count)
					}
				}
			}
			return sum
		})
		return []kernels.TensorInfo{tinfo}, nil
	})
}
