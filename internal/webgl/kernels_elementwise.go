package webgl

import (
	"fmt"
	"math"

	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerElementwise installs the element-wise binary and unary shader
// programs. The binary programs come in two forms: a same-shape fast path
// that reads both operands at the output's own flat index (and, when
// packed, processes a whole RGBA texel per invocation), and a broadcast
// path that routes through the compiler-generated samplers.
func (b *Backend) registerElementwise() {
	type binOp struct {
		name  string
		f     func(a, x float32) float32
		boolO bool
	}
	binOps := []binOp{
		{"Add", func(a, x float32) float32 { return a + x }, false},
		{"Sub", func(a, x float32) float32 { return a - x }, false},
		{"Mul", func(a, x float32) float32 { return a * x }, false},
		{"RealDiv", func(a, x float32) float32 { return a / x }, false},
		{"Maximum", func(a, x float32) float32 {
			if a > x {
				return a
			}
			return x
		}, false},
		{"Minimum", func(a, x float32) float32 {
			if a < x {
				return a
			}
			return x
		}, false},
		{"Pow", func(a, x float32) float32 { return float32(math.Pow(float64(a), float64(x))) }, false},
		{"SquaredDifference", func(a, x float32) float32 { d := a - x; return d * d }, false},
		{"Greater", func(a, x float32) float32 { return b2f(a > x) }, true},
		{"GreaterEqual", func(a, x float32) float32 { return b2f(a >= x) }, true},
		{"Less", func(a, x float32) float32 { return b2f(a < x) }, true},
		{"LessEqual", func(a, x float32) float32 { return b2f(a <= x) }, true},
		{"Equal", func(a, x float32) float32 { return b2f(a == x) }, true},
		{"NotEqual", func(a, x float32) float32 { return b2f(a != x) }, true},
		{"LogicalAnd", func(a, x float32) float32 { return b2f(a != 0 && x != 0) }, true},
		{"LogicalOr", func(a, x float32) float32 { return b2f(a != 0 || x != 0) }, true},
		{"Prelu", func(a, x float32) float32 {
			if a >= 0 {
				return a
			}
			return x * a
		}, false},
	}
	for _, op := range binOps {
		op := op
		b.register(op.name, func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
			return b.binaryProgram(op.name, inputs, op.f, op.boolO)
		})
	}

	type unOp struct {
		name string
		f    func(x float32) float32
	}
	unOps := []unOp{
		{"Neg", func(x float32) float32 { return -x }},
		{"Abs", func(x float32) float32 { return float32(math.Abs(float64(x))) }},
		{"Exp", func(x float32) float32 { return float32(math.Exp(float64(x))) }},
		{"Expm1", func(x float32) float32 { return float32(math.Expm1(float64(x))) }},
		{"Log", func(x float32) float32 { return float32(math.Log(float64(x))) }},
		{"Log1p", func(x float32) float32 { return float32(math.Log1p(float64(x))) }},
		{"Sqrt", func(x float32) float32 { return float32(math.Sqrt(float64(x))) }},
		{"Rsqrt", func(x float32) float32 { return float32(1 / math.Sqrt(float64(x))) }},
		{"Square", func(x float32) float32 { return x * x }},
		{"Reciprocal", func(x float32) float32 { return 1 / x }},
		{"Floor", func(x float32) float32 { return float32(math.Floor(float64(x))) }},
		{"Ceil", func(x float32) float32 { return float32(math.Ceil(float64(x))) }},
		{"Round", func(x float32) float32 { return float32(math.RoundToEven(float64(x))) }},
		{"Sign", func(x float32) float32 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			default:
				return 0
			}
		}},
		{"Sin", func(x float32) float32 { return float32(math.Sin(float64(x))) }},
		{"Cos", func(x float32) float32 { return float32(math.Cos(float64(x))) }},
		{"Tan", func(x float32) float32 { return float32(math.Tan(float64(x))) }},
		{"Tanh", func(x float32) float32 { return float32(math.Tanh(float64(x))) }},
		{"Sigmoid", func(x float32) float32 { return float32(1 / (1 + math.Exp(-float64(x)))) }},
		{"Softplus", func(x float32) float32 { return float32(math.Log1p(math.Exp(float64(x)))) }},
		{"Relu", func(x float32) float32 {
			if x > 0 {
				return x
			}
			return 0
		}},
		{"Relu6", func(x float32) float32 {
			if x < 0 {
				return 0
			}
			if x > 6 {
				return 6
			}
			return x
		}},
		{"Elu", func(x float32) float32 {
			if x >= 0 {
				return x
			}
			return float32(math.Expm1(float64(x)))
		}},
	}
	for _, op := range unOps {
		op := op
		b.register(op.name, func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
			return b.unaryProgram(op.name, inputs, op.f)
		})
	}

	// Attribute-parameterized unary programs.
	b.register("ClipByValue", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		lo := float32(attrs.Float("clipValueMin", math.Inf(-1)))
		hi := float32(attrs.Float("clipValueMax", math.Inf(1)))
		return b.unaryProgram("ClipByValue", inputs, func(x float32) float32 {
			if x < lo {
				return lo
			}
			if x > hi {
				return hi
			}
			return x
		})
	})
	b.register("LeakyRelu", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		alpha := float32(attrs.Float("alpha", 0.2))
		return b.unaryProgram("LeakyRelu", inputs, func(x float32) float32 {
			if x >= 0 {
				return x
			}
			return alpha * x
		})
	})
	b.register("Step", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		alpha := float32(attrs.Float("alpha", 0))
		return b.unaryProgram("Step", inputs, func(x float32) float32 {
			switch {
			case math.IsNaN(float64(x)):
				return x
			case x > 0:
				return 1
			default:
				return alpha
			}
		})
	})

	// Fill is a zero-input program: every texel computes the constant.
	b.register("Fill", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		shape := attrs.Ints("shape", nil)
		value := float32(attrs.Float("value", 0))
		dt, err := tensor.ParseDataType(attrs.String("dtype", "float32"))
		if err != nil {
			return nil, err
		}
		out, info, err := b.output(shape, dt)
		if err != nil {
			return nil, err
		}
		b.runFlat("Fill", out, func(int) float32 { return value })
		return []kernels.TensorInfo{info}, nil
	})

	// Select: three-input broadcast program.
	b.register("Select", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 3 {
			return nil, errf("Select: got %d inputs, want 3", len(inputs))
		}
		_, condTex := b.input(inputs[0])
		_, tTex := b.input(inputs[1])
		_, fTex := b.input(inputs[2])
		outShape, err := tensor.BroadcastShapes(inputs[1].Shape, inputs[2].Shape)
		if err != nil {
			return nil, err
		}
		outShape, err = tensor.BroadcastShapes(outShape, inputs[0].Shape)
		if err != nil {
			return nil, err
		}
		out, info, err := b.output(outShape, inputs[1].DType)
		if err != nil {
			return nil, err
		}
		maps := b.broadcastSamplers(outShape, [][]int{inputs[0].Shape, inputs[1].Shape, inputs[2].Shape})
		b.runFlat("Select", out, func(i int) float32 {
			if condTex.FetchFlat(maps[0](i)) != 0 {
				return tTex.FetchFlat(maps[1](i))
			}
			return fTex.FetchFlat(maps[2](i))
		})
		return []kernels.TensorInfo{info}, nil
	})

	// FusedBatchNorm: five-input broadcast program (x, mean, variance,
	// offset, scale).
	b.register("FusedBatchNorm", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 5 {
			return nil, errf("FusedBatchNorm: got %d inputs, want 5", len(inputs))
		}
		eps := float32(attrs.Float("varianceEpsilon", 1e-3))
		texes := make([]*glsim.Texture, 5)
		shapes := make([][]int, 5)
		for i := range inputs {
			_, texes[i] = b.input(inputs[i])
			shapes[i] = inputs[i].Shape
		}
		out, info, err := b.output(inputs[0].Shape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		maps := b.broadcastSamplers(inputs[0].Shape, shapes)
		x, mean, variance, offset, scale := texes[0], texes[1], texes[2], texes[3], texes[4]
		b.runFlat("FusedBatchNorm", out, func(i int) float32 {
			m := mean.FetchFlat(maps[1](i))
			v := variance.FetchFlat(maps[2](i))
			o := offset.FetchFlat(maps[3](i))
			s := scale.FetchFlat(maps[4](i))
			norm := (x.FetchFlat(i) - m) / float32(math.Sqrt(float64(v+eps)))
			return norm*s + o
		})
		return []kernels.TensorInfo{info}, nil
	})
}

func b2f(c bool) float32 {
	if c {
		return 1
	}
	return 0
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// binaryProgram assembles an element-wise binary shader. Equal shapes use
// the direct path (and a packed whole-texel fast path); otherwise the
// broadcast samplers are compiled in.
func (b *Backend) binaryProgram(name string, inputs []kernels.Input, f func(a, x float32) float32, boolOut bool) ([]kernels.TensorInfo, error) {
	if len(inputs) != 2 {
		return nil, errf("%s: got %d inputs, want 2", name, len(inputs))
	}
	_, aTex := b.input(inputs[0])
	_, xTex := b.input(inputs[1])
	outShape, err := tensor.BroadcastShapes(inputs[0].Shape, inputs[1].Shape)
	if err != nil {
		return nil, err
	}
	dt := inputs[0].DType
	if boolOut {
		dt = tensor.Bool
	}
	out, info, err := b.output(outShape, dt)
	if err != nil {
		return nil, err
	}
	if sameShape(outShape, [][]int{inputs[0].Shape, inputs[1].Shape}) {
		if out.tex.Format == glsim.RGBA32F {
			// Packed fast path: one invocation computes a whole RGBA
			// texel of four consecutive values, the analogue of the
			// vec4 arithmetic packing enables in GLSL.
			size := out.size
			b.runTexel(name, out, func(texel int) [4]float32 {
				var vals [4]float32
				base := texel * 4
				n := size - base
				if n > 4 {
					n = 4
				}
				for c := 0; c < n; c++ {
					vals[c] = f(aTex.FetchFlat(base+c), xTex.FetchFlat(base+c))
				}
				return vals
			})
		} else {
			b.runFlat(name, out, func(i int) float32 {
				return f(aTex.FetchFlat(i), xTex.FetchFlat(i))
			})
		}
		return []kernels.TensorInfo{info}, nil
	}
	maps := b.broadcastSamplers(outShape, [][]int{inputs[0].Shape, inputs[1].Shape})
	b.runFlat(name, out, func(i int) float32 {
		return f(aTex.FetchFlat(maps[0](i)), xTex.FetchFlat(maps[1](i)))
	})
	return []kernels.TensorInfo{info}, nil
}

// unaryProgram assembles an element-wise unary shader.
func (b *Backend) unaryProgram(name string, inputs []kernels.Input, f func(x float32) float32) ([]kernels.TensorInfo, error) {
	if len(inputs) != 1 {
		return nil, errf("%s: got %d inputs, want 1", name, len(inputs))
	}
	_, xTex := b.input(inputs[0])
	out, info, err := b.output(inputs[0].Shape, inputs[0].DType)
	if err != nil {
		return nil, err
	}
	if out.tex.Format == glsim.RGBA32F {
		size := out.size
		b.runTexel(name, out, func(texel int) [4]float32 {
			var vals [4]float32
			base := texel * 4
			n := size - base
			if n > 4 {
				n = 4
			}
			for c := 0; c < n; c++ {
				vals[c] = f(xTex.FetchFlat(base + c))
			}
			return vals
		})
	} else {
		b.runFlat(name, out, func(i int) float32 { return f(xTex.FetchFlat(i)) })
	}
	return []kernels.TensorInfo{info}, nil
}
