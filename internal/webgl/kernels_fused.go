package webgl

import (
	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerFused installs the fused conv/matmul shader programs. Each is a
// single program whose per-texel function accumulates the convolution (or
// matmul), samples the bias texture, and applies the activation inline —
// one shader dispatch and one output texture where the unfused graph needed
// three of each. This is the WebGL analogue of TensorFlow's Grappler fused
// ops: the activation formulas come from kernels.FusedActivation, so the
// fused program agrees bit-for-bit with the op sequence it replaces.
func (b *Backend) registerFused() {
	// fusedTail resolves the optional bias texture (inputs[2]) and the
	// activation for a fused kernel with outC output channels.
	fusedTail := func(name string, inputs []kernels.Input, attrs kernels.Attrs, outC int) (*glsim.Texture, func(float32) float32, error) {
		var biasTex *glsim.Texture
		if len(inputs) == 3 {
			bi := inputs[2]
			if len(bi.Shape) != 1 || bi.Shape[0] != outC {
				return nil, nil, errf("%s: bias must have shape [%d], got %v", name, outC, bi.Shape)
			}
			_, biasTex = b.input(bi)
		}
		actName := attrs.String("activation", "")
		act, ok := kernels.FusedActivation(actName)
		if !ok {
			return nil, nil, errf("%s: unknown activation %q", name, actName)
		}
		return biasTex, act, nil
	}
	// finish applies the epilogue to one accumulated output value.
	finish := func(sum float32, oc int, biasTex *glsim.Texture, act func(float32) float32) float32 {
		if biasTex != nil {
			sum += biasTex.FetchFlat(oc)
		}
		if act != nil {
			sum = act(sum)
		}
		return sum
	}

	b.register("FusedConv2D", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 && len(inputs) != 3 {
			return nil, errf("FusedConv2D: got %d inputs, want 2 or 3", len(inputs))
		}
		x, w := inputs[0], inputs[1]
		info, err := kernels.ComputeConv2DInfo(x.Shape, w.Shape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), false)
		if err != nil {
			return nil, err
		}
		biasTex, act, err := fusedTail("FusedConv2D", inputs, attrs, info.OutChannels)
		if err != nil {
			return nil, err
		}
		_, xTex := b.input(x)
		_, wTex := b.input(w)
		out, tinfo, err := b.output(info.OutShape(), tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, outC := info.InChannels, info.OutChannels
		inRow := info.InWidth * inC
		inImg := info.InHeight * inRow
		b.runFlat("FusedConv2D", out, func(flat int) float32 {
			oc := flat % outC
			rest := flat / outC
			ox := rest % info.OutWidth
			rest /= info.OutWidth
			oy := rest % info.OutHeight
			bb := rest / info.OutHeight
			yCorner := oy*info.StrideHeight - info.PadTop
			xCorner := ox*info.StrideWidth - info.PadLeft
			var sum float32
			for fy := 0; fy < info.FilterHeight; fy++ {
				iy := yCorner + fy*info.DilationHeight
				if iy < 0 || iy >= info.InHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					ix := xCorner + fx*info.DilationWidth
					if ix < 0 || ix >= info.InWidth {
						continue
					}
					inBase := bb*inImg + iy*inRow + ix*inC
					wBase := ((fy*info.FilterWidth)+fx)*inC*outC + oc
					for ic := 0; ic < inC; ic++ {
						sum += xTex.FetchFlat(inBase+ic) * wTex.FetchFlat(wBase+ic*outC)
					}
				}
			}
			return finish(sum, oc, biasTex, act)
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("FusedDepthwiseConv2dNative", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 && len(inputs) != 3 {
			return nil, errf("FusedDepthwiseConv2dNative: got %d inputs, want 2 or 3", len(inputs))
		}
		x, w := inputs[0], inputs[1]
		info, err := kernels.ComputeConv2DInfo(x.Shape, w.Shape,
			attrs.Ints("strides", []int{1, 1}), attrs.Ints("dilations", []int{1, 1}),
			attrs.String("pad", "valid"), true)
		if err != nil {
			return nil, err
		}
		biasTex, act, err := fusedTail("FusedDepthwiseConv2dNative", inputs, attrs, info.OutChannels)
		if err != nil {
			return nil, err
		}
		_, xTex := b.input(x)
		_, wTex := b.input(w)
		out, tinfo, err := b.output(info.OutShape(), tensor.Float32)
		if err != nil {
			return nil, err
		}
		inC, mult, outC := info.InChannels, info.ChannelMultiplier, info.OutChannels
		inRow := info.InWidth * inC
		inImg := info.InHeight * inRow
		b.runFlat("FusedDepthwiseConv2dNative", out, func(flat int) float32 {
			oc := flat % outC
			rest := flat / outC
			ox := rest % info.OutWidth
			rest /= info.OutWidth
			oy := rest % info.OutHeight
			bb := rest / info.OutHeight
			ic := oc / mult
			q := oc % mult
			yCorner := oy*info.StrideHeight - info.PadTop
			xCorner := ox*info.StrideWidth - info.PadLeft
			var sum float32
			for fy := 0; fy < info.FilterHeight; fy++ {
				iy := yCorner + fy*info.DilationHeight
				if iy < 0 || iy >= info.InHeight {
					continue
				}
				for fx := 0; fx < info.FilterWidth; fx++ {
					ix := xCorner + fx*info.DilationWidth
					if ix < 0 || ix >= info.InWidth {
						continue
					}
					sum += xTex.FetchFlat(bb*inImg+iy*inRow+ix*inC+ic) *
						wTex.FetchFlat(((fy*info.FilterWidth)+fx)*inC*mult+ic*mult+q)
				}
			}
			return finish(sum, oc, biasTex, act)
		})
		return []kernels.TensorInfo{tinfo}, nil
	})

	b.register("_FusedMatMul", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 && len(inputs) != 3 {
			return nil, errf("_FusedMatMul: got %d inputs, want 2 or 3", len(inputs))
		}
		a, w := inputs[0], inputs[1]
		transposeA := attrs.Bool("transposeA", false)
		transposeB := attrs.Bool("transposeB", false)
		if len(a.Shape) != 2 || len(w.Shape) != 2 {
			return nil, errf("_FusedMatMul: inputs must be rank 2, got %v and %v", a.Shape, w.Shape)
		}
		m, kA := a.Shape[0], a.Shape[1]
		if transposeA {
			m, kA = kA, m
		}
		kB, n := w.Shape[0], w.Shape[1]
		if transposeB {
			kB, n = n, kB
		}
		if kA != kB {
			return nil, errf("_FusedMatMul: inner dims mismatch %v x %v", a.Shape, w.Shape)
		}
		k := kA
		biasTex, act, err := fusedTail("_FusedMatMul", inputs, attrs, n)
		if err != nil {
			return nil, err
		}
		_, aTex := b.input(a)
		_, wTex := b.input(w)
		out, tinfo, err := b.output([]int{m, n}, tensor.Float32)
		if err != nil {
			return nil, err
		}
		b.runFlat("_FusedMatMul", out, func(flat int) float32 {
			i := flat / n
			j := flat % n
			var sum float32
			for kk := 0; kk < k; kk++ {
				var av, bv float32
				if transposeA {
					av = aTex.FetchFlat(kk*m + i)
				} else {
					av = aTex.FetchFlat(i*k + kk)
				}
				if transposeB {
					bv = wTex.FetchFlat(j*k + kk)
				} else {
					bv = wTex.FetchFlat(kk*n + j)
				}
				sum += av * bv
			}
			return finish(sum, j, biasTex, act)
		})
		return []kernels.TensorInfo{tinfo}, nil
	})
}
