package webgl

import (
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerGather installs the indexed data-movement programs used heavily
// by training loops (minibatch gathers, one-hot labels, broadcast-grad
// tiles), so backpropagation stays device-resident.
func (b *Backend) registerGather() {
	b.register("GatherV2", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("GatherV2: got %d inputs, want 2", len(inputs))
		}
		x, indices := inputs[0], inputs[1]
		axis := attrs.Int("axis", 0)
		rank := len(x.Shape)
		if axis < 0 {
			axis += rank
		}
		if axis < 0 || axis >= rank {
			return nil, errf("GatherV2: axis out of range for rank %d", rank)
		}
		outShape := make([]int, 0, rank-1+len(indices.Shape))
		outShape = append(outShape, x.Shape[:axis]...)
		outShape = append(outShape, indices.Shape...)
		outShape = append(outShape, x.Shape[axis+1:]...)
		_, xTex := b.input(x)
		_, idxTex := b.input(indices)
		out, info, err := b.output(outShape, x.DType)
		if err != nil {
			return nil, err
		}
		axisSize := x.Shape[axis]
		innerSize := tensor.ShapeSize(x.Shape[axis+1:])
		numIdx := tensor.ShapeSize(indices.Shape)
		b.runFlat("GatherV2", out, func(flat int) float32 {
			inner := flat % innerSize
			rest := flat / innerSize
			ii := rest % numIdx
			outer := rest / numIdx
			idx := int(idxTex.FetchFlat(ii))
			if idx < 0 || idx >= axisSize {
				// GLSL would read garbage; we surface zero, and the
				// reference kernel (used in tests) errors instead.
				return 0
			}
			return xTex.FetchFlat((outer*axisSize+idx)*innerSize + inner)
		})
		return []kernels.TensorInfo{info}, nil
	})

	b.register("OneHot", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("OneHot: got %d inputs, want 1", len(inputs))
		}
		indices := inputs[0]
		depth := attrs.Int("depth", 0)
		if depth <= 0 {
			return nil, errf("OneHot: depth must be positive")
		}
		onValue := float32(attrs.Float("onValue", 1))
		offValue := float32(attrs.Float("offValue", 0))
		outShape := append(tensor.CopyShape(indices.Shape), depth)
		_, idxTex := b.input(indices)
		out, info, err := b.output(outShape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		b.runFlat("OneHot", out, func(flat int) float32 {
			c := flat % depth
			i := flat / depth
			if int(idxTex.FetchFlat(i)) == c {
				return onValue
			}
			return offValue
		})
		return []kernels.TensorInfo{info}, nil
	})

	b.register("Tile", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("Tile: got %d inputs, want 1", len(inputs))
		}
		x := inputs[0]
		reps := attrs.Ints("reps", nil)
		rank := len(x.Shape)
		if len(reps) != rank {
			return nil, errf("Tile: reps %v incompatible with rank %d", reps, rank)
		}
		outShape := make([]int, rank)
		for d := 0; d < rank; d++ {
			if reps[d] <= 0 {
				return nil, errf("Tile: reps must be positive, got %v", reps)
			}
			outShape[d] = x.Shape[d] * reps[d]
		}
		_, xTex := b.input(x)
		out, info, err := b.output(outShape, x.DType)
		if err != nil {
			return nil, err
		}
		outStrides := tensor.ComputeStrides(outShape)
		inStrides := tensor.ComputeStrides(x.Shape)
		inShape := tensor.CopyShape(x.Shape)
		b.runFlat("Tile", out, func(flat int) float32 {
			idx := 0
			for d := 0; d < rank; d++ {
				c := flat / outStrides[d] % outShape[d]
				idx += (c % inShape[d]) * inStrides[d]
			}
			return xTex.FetchFlat(idx)
		})
		return []kernels.TensorInfo{info}, nil
	})
}
