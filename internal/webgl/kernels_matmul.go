package webgl

import (
	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerMatMul installs the matrix-multiplication shader — the Go
// counterpart of Listing 2 in the paper: each output texel decodes its
// (row, col) coordinates with getOutputCoords(), samples rows of A and
// columns of B through compiler-generated getters, and accumulates a dot
// product.
func (b *Backend) registerMatMul() {
	b.register("BatchMatMul", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 2 {
			return nil, errf("BatchMatMul: got %d inputs, want 2", len(inputs))
		}
		a, x := inputs[0], inputs[1]
		transposeA := attrs.Bool("transposeA", false)
		transposeB := attrs.Bool("transposeB", false)
		if len(a.Shape) != 3 || len(x.Shape) != 3 {
			return nil, errf("BatchMatMul: inputs must be rank 3, got %v and %v", a.Shape, x.Shape)
		}
		batchA, batchB := a.Shape[0], x.Shape[0]
		batch := batchA
		if batchB > batch {
			batch = batchB
		}
		if batchA != batchB && batchA != 1 && batchB != 1 {
			return nil, errf("BatchMatMul: incompatible batch dims %d and %d", batchA, batchB)
		}
		m, kA := a.Shape[1], a.Shape[2]
		if transposeA {
			m, kA = kA, m
		}
		kB, n := x.Shape[1], x.Shape[2]
		if transposeB {
			kB, n = n, kB
		}
		if kA != kB {
			return nil, errf("BatchMatMul: inner dims mismatch %v x %v", a.Shape, x.Shape)
		}
		k := kA
		_, aTex := b.input(a)
		_, bTex := b.input(x)
		out, info, err := b.output([]int{batch, m, n}, tensor.Float32)
		if err != nil {
			return nil, err
		}

		aMat := a.Shape[1] * a.Shape[2]
		bMat := x.Shape[1] * x.Shape[2]
		// Compiler-generated samplers: getA(p, i, kk) and getB(p, kk, j)
		// in flat index form, with the transpose folded into strides.
		aRowStride, aColStride := a.Shape[2], 1
		if transposeA {
			aRowStride, aColStride = 1, a.Shape[2]
		}
		bRowStride, bColStride := x.Shape[2], 1
		if transposeB {
			bRowStride, bColStride = 1, x.Shape[2]
		}

		valueAt := func(flat int) float32 {
			// getOutputCoords()
			j := flat % n
			rest := flat / n
			i := rest % m
			p := rest / m
			aOff := (p % batchA) * aMat
			bOff := (p % batchB) * bMat
			var sum float32
			for kk := 0; kk < k; kk++ {
				sum += aTex.FetchFlat(aOff+i*aRowStride+kk*aColStride) *
					bTex.FetchFlat(bOff+kk*bRowStride+j*bColStride)
			}
			return sum
		}

		if out.tex.Format == glsim.RGBA32F && !transposeA && !transposeB {
			// Packed matmul: one texel computes four consecutive output
			// columns, re-using the A row samples across all four — the
			// simulation analogue of the vec4 dot-product trick in the
			// paper's packed shaders.
			size := out.size
			b.runTexel("BatchMatMul(packed)", out, func(texel int) [4]float32 {
				var vals [4]float32
				base := texel * 4
				limit := size - base
				if limit > 4 {
					limit = 4
				}
				if limit <= 0 {
					return vals
				}
				j0 := base % n
				rest := base / n
				i := rest % m
				p := rest / m
				if j0+limit <= n {
					// All four outputs share row i: fetch A once per k.
					aOff := (p%batchA)*aMat + i*aRowStride
					bOff := (p % batchB) * bMat
					for kk := 0; kk < k; kk++ {
						av := aTex.FetchFlat(aOff + kk)
						bRow := bOff + kk*bRowStride + j0
						for c := 0; c < limit; c++ {
							vals[c] += av * bTex.FetchFlat(bRow+c)
						}
					}
					return vals
				}
				for c := 0; c < limit; c++ {
					vals[c] = valueAt(base + c)
				}
				return vals
			})
			return []kernels.TensorInfo{info}, nil
		}

		b.runFlat("BatchMatMul", out, valueAt)
		return []kernels.TensorInfo{info}, nil
	})
}
