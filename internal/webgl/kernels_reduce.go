package webgl

import (
	"math"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerReduce installs the [outer, inner] reduction programs and the
// multi-pass softmax. Reductions produce one output texel per outer row;
// softmax chains three programs (row max, exp-sum, normalize) through
// intermediate textures, the way the real backend chains fragment shaders.
func (b *Backend) registerReduce() {
	reduceOp := func(name string, initial float32, merge func(acc, v float32) float32, finish func(acc float32, n int) float32, outDType func(tensor.DataType) tensor.DataType) kernels.OverrideKernel {
		return func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
			if len(inputs) != 1 {
				return nil, errf("%s: got %d inputs, want 1", name, len(inputs))
			}
			x := inputs[0]
			if len(x.Shape) != 2 {
				return nil, errf("%s: input must be rank 2 [outer, inner], got %v", name, x.Shape)
			}
			outer, inner := x.Shape[0], x.Shape[1]
			_, xTex := b.input(x)
			dt := x.DType
			if outDType != nil {
				dt = outDType(x.DType)
			}
			out, info, err := b.output([]int{outer}, dt)
			if err != nil {
				return nil, err
			}
			b.runFlat(name, out, func(o int) float32 {
				acc := initial
				base := o * inner
				for i := 0; i < inner; i++ {
					acc = merge(acc, xTex.FetchFlat(base+i))
				}
				if finish != nil {
					acc = finish(acc, inner)
				}
				return acc
			})
			return []kernels.TensorInfo{info}, nil
		}
	}
	b.register("Sum", reduceOp("Sum", 0, func(a, v float32) float32 { return a + v }, nil, nil))
	b.register("Mean", reduceOp("Mean", 0, func(a, v float32) float32 { return a + v },
		func(a float32, n int) float32 { return a / float32(n) },
		func(tensor.DataType) tensor.DataType { return tensor.Float32 }))
	b.register("Max", reduceOp("Max", float32(math.Inf(-1)), func(a, v float32) float32 {
		if v > a {
			return v
		}
		return a
	}, nil, nil))
	b.register("Min", reduceOp("Min", float32(math.Inf(1)), func(a, v float32) float32 {
		if v < a {
			return v
		}
		return a
	}, nil, nil))
	b.register("Prod", reduceOp("Prod", 1, func(a, v float32) float32 { return a * v }, nil, nil))

	argOp := func(name string, better func(v, best float32) bool) kernels.OverrideKernel {
		return func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
			if len(inputs) != 1 {
				return nil, errf("%s: got %d inputs, want 1", name, len(inputs))
			}
			x := inputs[0]
			if len(x.Shape) != 2 || x.Shape[1] == 0 {
				return nil, errf("%s: input must be rank 2 with non-empty inner dim, got %v", name, x.Shape)
			}
			outer, inner := x.Shape[0], x.Shape[1]
			_, xTex := b.input(x)
			out, info, err := b.output([]int{outer}, tensor.Int32)
			if err != nil {
				return nil, err
			}
			b.runFlat(name, out, func(o int) float32 {
				base := o * inner
				best := xTex.FetchFlat(base)
				bestIdx := 0
				for i := 1; i < inner; i++ {
					if v := xTex.FetchFlat(base + i); better(v, best) {
						best = v
						bestIdx = i
					}
				}
				return float32(bestIdx)
			})
			return []kernels.TensorInfo{info}, nil
		}
	}
	b.register("ArgMax", argOp("ArgMax", func(v, best float32) bool { return v > best }))
	b.register("ArgMin", argOp("ArgMin", func(v, best float32) bool { return v < best }))

	// Softmax: three chained programs over intermediate textures.
	b.register("Softmax", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("Softmax: got %d inputs, want 1", len(inputs))
		}
		x := inputs[0]
		if len(x.Shape) != 2 {
			return nil, errf("Softmax: input must be rank 2 [outer, inner], got %v", x.Shape)
		}
		outer, inner := x.Shape[0], x.Shape[1]
		_, xTex := b.input(x)

		// Pass 1: row maxima.
		rowMax, _, err := b.output([]int{outer}, tensor.Float32)
		if err != nil {
			return nil, err
		}
		b.runFlat("Softmax/rowMax", rowMax, func(o int) float32 {
			base := o * inner
			best := xTex.FetchFlat(base)
			for i := 1; i < inner; i++ {
				if v := xTex.FetchFlat(base + i); v > best {
					best = v
				}
			}
			return best
		})
		maxTex := rowMax.tex

		// Pass 2: row sums of exp(x - max).
		rowSum, _, err := b.output([]int{outer}, tensor.Float32)
		if err != nil {
			return nil, err
		}
		b.runFlat("Softmax/rowSum", rowSum, func(o int) float32 {
			base := o * inner
			m := maxTex.FetchFlat(o)
			var sum float32
			for i := 0; i < inner; i++ {
				sum += float32(math.Exp(float64(xTex.FetchFlat(base+i) - m)))
			}
			return sum
		})
		sumTex := rowSum.tex

		// Pass 3: normalized output.
		out, info, err := b.output(x.Shape, tensor.Float32)
		if err != nil {
			return nil, err
		}
		b.runFlat("Softmax/normalize", out, func(flat int) float32 {
			o := flat / inner
			m := maxTex.FetchFlat(o)
			s := sumTex.FetchFlat(o)
			return float32(math.Exp(float64(xTex.FetchFlat(flat)-m))) / s
		})

		// The intermediates are backend-internal: release them once the
		// output program has been enqueued (queue ordering keeps their
		// textures alive until execution).
		b.DisposeData(rowMax.id)
		b.DisposeData(rowSum.id)
		return []kernels.TensorInfo{info}, nil
	})
}
