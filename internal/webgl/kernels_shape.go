package webgl

import (
	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// registerShape installs data-movement programs: transpose, pad, slice and
// concat. Each is a pure coordinate remapping executed per output texel.
func (b *Backend) registerShape() {
	b.register("Transpose", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("Transpose: got %d inputs, want 1", len(inputs))
		}
		x := inputs[0]
		perm := attrs.Ints("perm", nil)
		rank := len(x.Shape)
		if len(perm) != rank {
			return nil, errf("Transpose: perm %v incompatible with rank %d", perm, rank)
		}
		outShape := make([]int, rank)
		for i, p := range perm {
			if p < 0 || p >= rank {
				return nil, errf("Transpose: invalid perm %v", perm)
			}
			outShape[i] = x.Shape[p]
		}
		_, xTex := b.input(x)
		out, info, err := b.output(outShape, x.DType)
		if err != nil {
			return nil, err
		}
		inStrides := tensor.ComputeStrides(x.Shape)
		outStrides := tensor.ComputeStrides(outShape)
		// Terms mapping output flat -> input flat; squeezing drops
		// size-1 dims exactly as in the sampler compiler.
		var terms []indexTerm
		for i := 0; i < rank; i++ {
			if b.cfg.SqueezeLogicalShapes && outShape[i] == 1 {
				continue
			}
			terms = append(terms, indexTerm{div: outStrides[i], dim: outShape[i], stride: inStrides[perm[i]]})
		}
		b.runFlat("Transpose", out, func(flat int) float32 {
			idx := 0
			for _, t := range terms {
				idx += (flat / t.div % t.dim) * t.stride
			}
			return xTex.FetchFlat(idx)
		})
		return []kernels.TensorInfo{info}, nil
	})

	b.register("PadV2", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("PadV2: got %d inputs, want 1", len(inputs))
		}
		x := inputs[0]
		paddings := attrs.Ints("paddings", nil)
		constValue := float32(attrs.Float("constantValue", 0))
		rank := len(x.Shape)
		if len(paddings) != 2*rank {
			return nil, errf("PadV2: paddings %v must have 2*rank entries", paddings)
		}
		outShape := make([]int, rank)
		for d := 0; d < rank; d++ {
			outShape[d] = x.Shape[d] + paddings[2*d] + paddings[2*d+1]
		}
		_, xTex := b.input(x)
		out, info, err := b.output(outShape, x.DType)
		if err != nil {
			return nil, err
		}
		outStrides := tensor.ComputeStrides(outShape)
		inStrides := tensor.ComputeStrides(x.Shape)
		inShape := tensor.CopyShape(x.Shape)
		before := make([]int, rank)
		for d := 0; d < rank; d++ {
			before[d] = paddings[2*d]
		}
		b.runFlat("PadV2", out, func(flat int) float32 {
			idx := 0
			for d := 0; d < rank; d++ {
				c := flat / outStrides[d] % outShape[d]
				c -= before[d]
				if c < 0 || c >= inShape[d] {
					return constValue
				}
				idx += c * inStrides[d]
			}
			return xTex.FetchFlat(idx)
		})
		return []kernels.TensorInfo{info}, nil
	})

	b.register("Slice", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) != 1 {
			return nil, errf("Slice: got %d inputs, want 1", len(inputs))
		}
		x := inputs[0]
		begin := attrs.Ints("begin", nil)
		size := attrs.Ints("size", nil)
		rank := len(x.Shape)
		if len(begin) != rank || len(size) != rank {
			return nil, errf("Slice: begin/size incompatible with rank %d", rank)
		}
		outShape := make([]int, rank)
		for d := 0; d < rank; d++ {
			s := size[d]
			if s == -1 {
				s = x.Shape[d] - begin[d]
			}
			if begin[d] < 0 || s < 0 || begin[d]+s > x.Shape[d] {
				return nil, errf("Slice: begin %v size %v out of bounds for %v", begin, size, x.Shape)
			}
			outShape[d] = s
		}
		_, xTex := b.input(x)
		out, info, err := b.output(outShape, x.DType)
		if err != nil {
			return nil, err
		}
		outStrides := tensor.ComputeStrides(outShape)
		inStrides := tensor.ComputeStrides(x.Shape)
		baseOffset := 0
		for d := 0; d < rank; d++ {
			baseOffset += begin[d] * inStrides[d]
		}
		var terms []indexTerm
		for d := 0; d < rank; d++ {
			if b.cfg.SqueezeLogicalShapes && outShape[d] == 1 {
				continue
			}
			terms = append(terms, indexTerm{div: outStrides[d], dim: outShape[d], stride: inStrides[d]})
		}
		b.runFlat("Slice", out, func(flat int) float32 {
			idx := baseOffset
			for _, t := range terms {
				idx += (flat / t.div % t.dim) * t.stride
			}
			return xTex.FetchFlat(idx)
		})
		return []kernels.TensorInfo{info}, nil
	})

	b.register("Concat", func(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
		if len(inputs) == 0 {
			return nil, errf("Concat: needs at least one input")
		}
		axis := attrs.Int("axis", 0)
		rank := len(inputs[0].Shape)
		if axis < 0 {
			axis += rank
		}
		if axis < 0 || axis >= rank {
			return nil, errf("Concat: axis out of range for rank %d", rank)
		}
		outShape := tensor.CopyShape(inputs[0].Shape)
		outShape[axis] = 0
		texes := make([]*glsim.Texture, len(inputs))
		offsets := make([]int, len(inputs)) // cumulative sizes along axis
		for i, in := range inputs {
			if len(in.Shape) != rank {
				return nil, errf("Concat: rank mismatch")
			}
			offsets[i] = outShape[axis]
			outShape[axis] += in.Shape[axis]
			_, texes[i] = b.input(in)
		}
		out, info, err := b.output(outShape, inputs[0].DType)
		if err != nil {
			return nil, err
		}
		outerSize := tensor.ShapeSize(outShape[:axis])
		innerSize := tensor.ShapeSize(outShape[axis+1:])
		_ = outerSize
		axisDim := outShape[axis]
		inAxis := make([]int, len(inputs))
		for i, in := range inputs {
			inAxis[i] = in.Shape[axis]
		}
		b.runFlat("Concat", out, func(flat int) float32 {
			innerIdx := flat % innerSize
			rest := flat / innerSize
			a := rest % axisDim
			outer := rest / axisDim
			// Select the segment containing coordinate a; the shader
			// equivalent is a chain of coordinate comparisons.
			for i := len(inputs) - 1; i >= 0; i-- {
				if a >= offsets[i] {
					local := a - offsets[i]
					return texes[i].FetchFlat((outer*inAxis[i]+local)*innerSize + innerIdx)
				}
			}
			return 0
		})
		return []kernels.TensorInfo{info}, nil
	})
}
