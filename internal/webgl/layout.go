// Package webgl implements the WebGL backend of the library over the
// simulated device in internal/glsim. It is the Go counterpart of the
// backend described in Section 4.1 of the paper and reproduces its design
// decisions:
//
//   - tensors live in 2-D float textures; a "shader compiler" maps
//     high-dimensional logical coordinates onto physical texture space,
//     squeezing size-1 dimensions (the ~1.3x logical-mapping optimization);
//   - operations compile to fragment-shader programs executed once per
//     output texel (Figure 4, Listing 2);
//   - data can be stored packed, four values per RGBA texel, instead of one
//     value in the red channel (the 1.3-1.4x packing optimization, §3.9);
//   - dispatch is asynchronous: ops enqueue programs and return immediately;
//     readback is either blocking (dataSync / gl.readPixels) or fence-based
//     (data / gl.fenceSync or EXT_disjoint_timer_query polling, §4.1.1);
//   - textures are recycled rather than freed, and paged to host memory
//     above a device-memory threshold (§4.1.2).
package webgl

import (
	"fmt"
	"math"

	"repro/internal/glsim"
	"repro/internal/tensor"
)

// texShape computes the physical texture dimensions (width, height in
// texels) for a tensor of the given element count. Values are stored in
// flat row-major logical order, either one per texel (R32F) or four per
// texel (RGBA32F) when packed.
func texShape(size int, packed bool, maxTextureSize int) (w, h int, err error) {
	texels := size
	if packed {
		texels = (size + 3) / 4
	}
	if texels == 0 {
		texels = 1
	}
	w = int(math.Ceil(math.Sqrt(float64(texels))))
	if w > maxTextureSize {
		return 0, 0, fmt.Errorf("webgl: tensor of %d elements exceeds device texture limits (%d)", size, maxTextureSize)
	}
	h = (texels + w - 1) / w
	if h > maxTextureSize {
		return 0, 0, fmt.Errorf("webgl: tensor of %d elements exceeds device texture limits (%d)", size, maxTextureSize)
	}
	return w, h, nil
}

// texData is the backend-side record of one data container (the analogue of
// the TextureData structs in the TensorFlow.js WebGL backend).
type texData struct {
	id    tensor.DataID
	shape []int
	dtype tensor.DataType
	size  int

	// tex is the device texture; nil when the data is paged out to host
	// memory (Section 4.1.2).
	tex    *glsim.Texture
	packed bool

	// paged holds the host copy while tex is nil.
	paged []float32

	// lastUse is a monotonic tick used for LRU paging decisions.
	lastUse int64
}

func (td *texData) bytes() int64 { return int64(td.size) * 4 }

// sampler is the output of the "shader compiler" for one input tensor: a
// closure mapping logical coordinates to values. The compiler emits strides
// only for kept (non-size-1) dimensions when squeezing is enabled — the
// logical-shape optimization of Section 4.1 ("the compiler will generate a
// getA(a, b, c, d) method whose implementation ignores a and c").
type sampler struct {
	// strides aligned to the original logical rank; squeezed-away and
	// broadcast dimensions carry stride 0.
	strides []int
	fetch   func(flat int) float32
}

// compileSampler builds a sampler for an input of the given shape as seen
// from an output of shape outShape (equal ranks; broadcasting per
// dimension). When squeeze is true, size-1 dimensions are compiled away.
func compileSampler(inShape, outShape []int, squeeze bool, fetch func(int) float32) sampler {
	outRank := len(outShape)
	inRank := len(inShape)
	inStrides := tensor.ComputeStrides(inShape)
	aligned := make([]int, outRank)
	for i := 0; i < outRank; i++ {
		j := i - (outRank - inRank)
		if j < 0 || inShape[j] == 1 {
			aligned[i] = 0
			continue
		}
		aligned[i] = inStrides[j]
	}
	if squeeze {
		// Nothing further: stride-0 dims already cost nothing in the
		// inner product. Squeezing matters for the coordinate *decode*
		// step, handled by coordDecoder below.
		return sampler{strides: aligned, fetch: fetch}
	}
	return sampler{strides: aligned, fetch: fetch}
}

// at computes the input flat index for output coordinates coords.
func (s sampler) at(coords []int) int {
	idx := 0
	for i, c := range coords {
		idx += c * s.strides[i]
	}
	return idx
}

// coordDecoder converts output flat indices to logical coordinates. With
// squeezing, only non-degenerate dimensions are decoded (fewer div/mod
// operations per texel — the measurable part of the §4.1 mapping
// optimization); the squeezed-away coordinates are always zero.
type coordDecoder struct {
	// dims are the sizes of decoded dimensions, innermost last.
	dims []int
	// axes[i] is the original axis of dims[i].
	axes []int
	rank int
}

func newCoordDecoder(shape []int, squeeze bool) coordDecoder {
	d := coordDecoder{rank: len(shape)}
	for i, s := range shape {
		if squeeze && s == 1 {
			continue
		}
		d.dims = append(d.dims, s)
		d.axes = append(d.axes, i)
	}
	return d
}

// decode fills coords (len == rank of the original shape) from a flat
// row-major index.
func (d coordDecoder) decode(flat int, coords []int) {
	for i := range coords {
		coords[i] = 0
	}
	for i := len(d.dims) - 1; i >= 0; i-- {
		dim := d.dims[i]
		coords[d.axes[i]] = flat % dim
		flat /= dim
	}
}
