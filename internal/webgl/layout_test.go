package webgl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTexShapeProperty: for any tensor size, the physical texture holds at
// least the required texels, respects the device limit, and wastes at most
// one row.
func TestTexShapeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(1 << 20)
		for _, packed := range []bool{false, true} {
			w, h, err := texShape(size, packed, 16384)
			if err != nil {
				return false
			}
			if w <= 0 || h <= 0 || w > 16384 || h > 16384 {
				return false
			}
			needed := size
			if packed {
				needed = (size + 3) / 4
			}
			if needed == 0 {
				needed = 1
			}
			if w*h < needed {
				return false
			}
			// No more than one extra row of waste.
			if w*(h-1) >= needed && h > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTexShapeRejectsOversized(t *testing.T) {
	if _, _, err := texShape(1<<30, false, 1024); err == nil {
		t.Fatal("tensor exceeding texture limits must error")
	}
}

// TestCoordDecoderSqueeze: decoding with squeezing produces the same
// coordinates on non-degenerate dims and zeros on size-1 dims.
func TestCoordDecoderSqueeze(t *testing.T) {
	shape := []int{1, 3, 1, 2}
	naive := newCoordDecoder(shape, false)
	squeezed := newCoordDecoder(shape, true)
	for flat := 0; flat < 6; flat++ {
		a := make([]int, 4)
		b := make([]int, 4)
		naive.decode(flat, a)
		squeezed.decode(flat, b)
		for d := 0; d < 4; d++ {
			if a[d] != b[d] {
				t.Fatalf("flat %d dim %d: naive %d vs squeezed %d", flat, d, a[d], b[d])
			}
		}
		if a[0] != 0 || a[2] != 0 {
			t.Fatalf("size-1 dims must decode to 0: %v", a)
		}
	}
	if len(squeezed.dims) != 2 {
		t.Fatalf("squeezed decoder kept %d dims, want 2", len(squeezed.dims))
	}
	if len(naive.dims) != 4 {
		t.Fatalf("naive decoder kept %d dims, want 4", len(naive.dims))
	}
}

// TestCompileSamplerBroadcastStrides: broadcast dims get stride 0.
func TestCompileSamplerBroadcastStrides(t *testing.T) {
	s := compileSampler([]int{3, 1}, []int{2, 3, 4}, true, nil)
	// Input [3,1] aligned to output rank 3: dims are (-, 3, 1) ->
	// strides (0, 1, 0).
	want := []int{0, 1, 0}
	for i := range want {
		if s.strides[i] != want[i] {
			t.Fatalf("aligned strides = %v, want %v", s.strides, want)
		}
	}
}
