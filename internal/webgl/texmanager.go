package webgl

import (
	"sync"

	"repro/internal/glsim"
)

// texKey identifies a physical texture shape for recycling purposes. Only
// textures with identical physical shape and format are interchangeable.
type texKey struct {
	w, h   int
	format glsim.TextureFormat
}

// textureManager implements the texture recycler of Section 4.1.2:
// "Disposing and re-allocating WebGL textures is relatively expensive, so
// we don't release memory when a tensor gets disposed. Instead, we mark the
// texture for reuse."
type textureManager struct {
	device  *glsim.Device
	enabled bool

	mu   sync.Mutex
	free map[texKey][]*glsim.Texture

	// Counters for the recycling ablation.
	acquires    int64
	recycleHits int64
	frees       int64
}

func newTextureManager(device *glsim.Device, enabled bool) *textureManager {
	return &textureManager{device: device, enabled: enabled, free: map[texKey][]*glsim.Texture{}}
}

// acquire returns a texture of the given physical shape, recycling a free
// one when possible. Recycled textures may contain stale values; callers
// always overwrite every texel (programs write the full output; uploads
// cover the logical size and readback truncates to it).
func (m *textureManager) acquire(w, h int, format glsim.TextureFormat) (*glsim.Texture, error) {
	m.mu.Lock()
	m.acquires++
	key := texKey{w: w, h: h, format: format}
	if m.enabled {
		if list := m.free[key]; len(list) > 0 {
			tex := list[len(list)-1]
			m.free[key] = list[:len(list)-1]
			m.recycleHits++
			m.mu.Unlock()
			return tex, nil
		}
	}
	m.mu.Unlock()
	return m.device.CreateTexture(w, h, format)
}

// release returns a texture to the free pool (or deletes it when recycling
// is disabled, the ablation baseline).
func (m *textureManager) release(tex *glsim.Texture) {
	if tex == nil {
		return
	}
	if !m.enabled {
		m.device.DeleteTexture(tex)
		return
	}
	m.mu.Lock()
	key := texKey{w: tex.Width, h: tex.Height, format: tex.Format}
	m.free[key] = append(m.free[key], tex)
	m.frees++
	m.mu.Unlock()
}

// freeCount returns the number of textures awaiting reuse.
func (m *textureManager) freeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, list := range m.free {
		n += len(list)
	}
	return n
}

// recycleRate reports hits / acquires, for tests.
func (m *textureManager) stats() (acquires, hits int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquires, m.recycleHits
}

// drainFree deletes every pooled texture, used when the backend needs to
// give device memory back (paging pressure) or shuts down.
func (m *textureManager) drainFree() {
	m.mu.Lock()
	lists := m.free
	m.free = map[texKey][]*glsim.Texture{}
	m.mu.Unlock()
	for _, list := range lists {
		for _, tex := range list {
			m.device.DeleteTexture(tex)
		}
	}
}
