// Package webgpu implements the experimental WebGPU backend the paper
// lists as future work (§4.3: "WebGPU provides a more generic way to
// express parallelizable computation on the GPU, which would allow us to
// write more optimized linear algebra kernels than the ones with the
// WebGL backend").
//
// The backend reuses the WebGL backend's entire data plane (textures,
// recycler, paging, fences) and overrides the hottest linear-algebra
// kernel with a compute-shader pipeline (glsim.ComputeProgram): a tiled
// matrix multiply that stages operand tiles in workgroup-shared memory;
// everything else inherits the fragment-shader kernels.
// Relative to the fragment-shader kernels, each loaded value is reused
// across a whole tile instead of being re-fetched per output element —
// exactly the "work groups and shared memory access" advantage the paper
// credits for CUDA's 3-10x lead over WebGL (§3.9).
package webgpu

import (
	"repro/internal/glsim"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/webgl"
)

// TileSize is the square tile staged in workgroup-shared memory by the
// matmul pipeline.
const TileSize = 16

// Backend is the WebGPU backend: the WebGL data plane plus compute-shader
// kernel pipelines.
type Backend struct {
	*webgl.Backend
	table map[string]kernels.OverrideKernel
}

// New creates a WebGPU backend.
func New(cfg webgl.Config) *Backend {
	b := &Backend{Backend: webgl.New(cfg)}
	b.initKernels()
	return b
}

// Name implements kernels.Backend.
func (b *Backend) Name() string { return "webgpu" }

// KernelOverride prefers the compute pipelines and falls back to the
// fragment-shader kernels for everything else.
func (b *Backend) KernelOverride(name string) (kernels.OverrideKernel, bool) {
	if k, ok := b.table[name]; ok {
		return k, true
	}
	return b.Backend.KernelOverride(name)
}

func (b *Backend) initKernels() {
	b.table = map[string]kernels.OverrideKernel{
		"BatchMatMul": b.matmulCompute,
	}
}

// matmulCompute is the tiled matrix-multiply pipeline. Each workgroup owns
// a TileSize×TileSize tile of the output; it marches over the shared
// dimension in TileSize steps, staging the A and B tiles into workgroup
// memory once and reusing each staged value TileSize times.
func (b *Backend) matmulCompute(inputs []kernels.Input, attrs kernels.Attrs) ([]kernels.TensorInfo, error) {
	if len(inputs) != 2 {
		return nil, kernels.ErrFallback
	}
	if attrs.Bool("transposeA", false) || attrs.Bool("transposeB", false) {
		return nil, kernels.ErrFallback // fragment path handles transposes
	}
	a, x := inputs[0], inputs[1]
	if len(a.Shape) != 3 || len(x.Shape) != 3 {
		return nil, kernels.ErrFallback
	}
	batchA, batchB := a.Shape[0], x.Shape[0]
	batch := batchA
	if batchB > batch {
		batch = batchB
	}
	if batchA != batchB && batchA != 1 && batchB != 1 {
		return nil, kernels.ErrFallback
	}
	m, k := a.Shape[1], a.Shape[2]
	if x.Shape[1] != k {
		return nil, kernels.ErrFallback
	}
	n := x.Shape[2]

	aTex := b.InputTexture(a)
	bTex := b.InputTexture(x)
	out, info, err := b.Output([]int{batch, m, n}, tensor.Float32)
	if err != nil {
		return nil, err
	}

	tilesM := (m + TileSize - 1) / TileSize
	tilesN := (n + TileSize - 1) / TileSize
	groups := batch * tilesM * tilesN
	aMat, bMat := m*k, k*n

	prog := &glsim.ComputeProgram{
		Name:            "BatchMatMul(compute)",
		NumGroups:       groups,
		ThreadsPerGroup: TileSize * TileSize,
		// Shared memory: an A tile, a B tile and the accumulator tile.
		SharedSize: 3 * TileSize * TileSize,
		Main: func(group int, shared []float32, store func(int, float32)) {
			tileN := group % tilesN
			rest := group / tilesN
			tileM := rest % tilesM
			p := rest / tilesM
			aOff := (p % batchA) * aMat
			bOff := (p % batchB) * bMat
			rowBase := tileM * TileSize
			colBase := tileN * TileSize

			aTile := shared[:TileSize*TileSize]
			bTile := shared[TileSize*TileSize : 2*TileSize*TileSize]
			acc := shared[2*TileSize*TileSize:]
			for i := range acc {
				acc[i] = 0
			}

			for k0 := 0; k0 < k; k0 += TileSize {
				kLen := TileSize
				if k0+kLen > k {
					kLen = k - k0
				}
				// Stage the A and B tiles into workgroup memory: one
				// fetch per element, reused TileSize times below.
				for r := 0; r < TileSize; r++ {
					row := rowBase + r
					if row >= m {
						break
					}
					base := aOff + row*k + k0
					for c := 0; c < kLen; c++ {
						aTile[r*TileSize+c] = aTex.FetchFlat(base + c)
					}
				}
				for r := 0; r < kLen; r++ {
					base := bOff + (k0+r)*n + colBase
					cLen := TileSize
					if colBase+cLen > n {
						cLen = n - colBase
					}
					for c := 0; c < cLen; c++ {
						bTile[r*TileSize+c] = bTex.FetchFlat(base + c)
					}
				}
				// Multiply the staged tiles.
				rLen := TileSize
				if rowBase+rLen > m {
					rLen = m - rowBase
				}
				cLen := TileSize
				if colBase+cLen > n {
					cLen = n - colBase
				}
				for r := 0; r < rLen; r++ {
					for kk := 0; kk < kLen; kk++ {
						av := aTile[r*TileSize+kk]
						if av == 0 {
							continue
						}
						bRow := bTile[kk*TileSize:]
						accRow := acc[r*TileSize:]
						for c := 0; c < cLen; c++ {
							accRow[c] += av * bRow[c]
						}
					}
				}
			}
			// Write the finished tile.
			rLen := TileSize
			if rowBase+rLen > m {
				rLen = m - rowBase
			}
			cLen := TileSize
			if colBase+cLen > n {
				cLen = n - colBase
			}
			outBase := p * m * n
			for r := 0; r < rLen; r++ {
				for c := 0; c < cLen; c++ {
					store(outBase+(rowBase+r)*n+colBase+c, acc[r*TileSize+c])
				}
			}
		},
	}
	b.Device().ExecuteCompute(prog, out)
	return []kernels.TensorInfo{info}, nil
}

var (
	_ kernels.Backend   = (*Backend)(nil)
	_ kernels.Overrider = (*Backend)(nil)
)
