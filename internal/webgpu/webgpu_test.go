package webgpu_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/webgl"
	"repro/internal/webgpu"
)

func init() {
	e := core.Global()
	e.RegisterBackend("cpu", func() (kernels.Backend, error) { return cpu.New(), nil })
	e.RegisterBackend("webgl", func() (kernels.Backend, error) { return webgl.New(webgl.DefaultConfig()), nil })
	e.RegisterBackend("webgpu", func() (kernels.Backend, error) {
		return webgpu.New(webgl.DefaultConfig()), nil
	})
}

func onBackend(t *testing.T, backend string, fn func() []float32) []float32 {
	t.Helper()
	e := core.Global()
	if err := e.SetBackend(backend); err != nil {
		t.Fatal(err)
	}
	defer e.SetBackend("cpu")
	var out []float32
	e.Tidy("webgpu-test", func() []*tensor.Tensor {
		out = fn()
		return nil
	})
	return out
}

func TestComputeMatMulParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dims := range [][3]int{{3, 5, 4}, {16, 16, 16}, {17, 33, 19}, {50, 20, 70}, {1, 100, 1}} {
		m, k, n := dims[0], dims[1], dims[2]
		av := make([]float32, m*k)
		bv := make([]float32, k*n)
		for i := range av {
			av[i] = float32(rng.NormFloat64())
		}
		for i := range bv {
			bv[i] = float32(rng.NormFloat64())
		}
		run := func() []float32 {
			return ops.MatMul(ops.FromValues(av, m, k), ops.FromValues(bv, k, n), false, false).DataSync()
		}
		want := onBackend(t, "cpu", run)
		got := onBackend(t, "webgpu", run)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4*(1+math.Abs(float64(want[i]))) {
				t.Fatalf("%dx%dx%d: element %d: webgpu %g vs cpu %g", m, k, n, i, got[i], want[i])
			}
		}
	}
}

func TestComputeMatMulBatchBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	av := make([]float32, 4*6)
	bv := make([]float32, 3*6*5)
	for i := range av {
		av[i] = float32(rng.NormFloat64())
	}
	for i := range bv {
		bv[i] = float32(rng.NormFloat64())
	}
	run := func() []float32 {
		a := ops.FromValues(av, 1, 4, 6)
		b := ops.FromValues(bv, 3, 6, 5)
		return ops.BatchMatMul(a, b, false, false).DataSync()
	}
	want := onBackend(t, "cpu", run)
	got := onBackend(t, "webgpu", run)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("element %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestTransposedMatMulFallsBackToFragmentPath(t *testing.T) {
	// Transposed matmuls decline the compute pipeline and run through the
	// inherited WebGL fragment kernels; results must still be correct.
	rng := rand.New(rand.NewSource(11))
	av := make([]float32, 6*4)
	bv := make([]float32, 6*5)
	for i := range av {
		av[i] = float32(rng.NormFloat64())
	}
	for i := range bv {
		bv[i] = float32(rng.NormFloat64())
	}
	run := func() []float32 {
		return ops.MatMul(ops.FromValues(av, 6, 4), ops.FromValues(bv, 6, 5), true, false).DataSync()
	}
	want := onBackend(t, "cpu", run)
	got := onBackend(t, "webgpu", run)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("element %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestWebGPUSharedMemoryReducesFetches(t *testing.T) {
	// The point of workgroups + shared memory (§4.3): each operand value
	// is fetched once per tile instead of once per output element. For a
	// 128³ matmul the fragment path fetches 2·128³ values; the tiled
	// path fetches each operand element once per opposing tile:
	// 2·128²·(128/16).
	e := core.Global()
	count := func(backend string) int64 {
		if err := e.SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		defer e.SetBackend("cpu")
		var fetches int64
		e.Tidy("fetch-count", func() []*tensor.Tensor {
			a := ops.Fill([]int{128, 128}, 0.5)
			a.DataSync()
			// Texture fetch counters are not exposed; approximate with
			// device texel invocations is not enough — so measure via
			// modeled GPU time instead, which tracks work done.
			ti := e.Time(func() {
				ops.MatMul(a, a, false, false).DataSync()
			})
			fetches = int64(ti.KernelMS * 1e6) // ns of modeled device time
			return nil
		})
		return fetches
	}
	fragment := count("webgl")
	compute := count("webgpu")
	if compute >= fragment {
		t.Fatalf("compute matmul (modeled %dns) should beat fragment (%dns)", compute, fragment)
	}
}
