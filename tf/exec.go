package tf

import (
	"repro/internal/exec"
	"repro/internal/graphmodel"
)

// This file is the execution-configuration surface: one functional-options
// API that replaces the four knobs that accreted across releases —
// native.SetWorkers/TFJS_NUM_WORKERS, Configure(Config{Workers}),
// WithGraphOptimize/WithGraphVerify, and serving's Disable* booleans. The
// same ExecOption values work everywhere execution is configured:
//
//	tf.ConfigureExec(tf.WithWorkers(4))                 // process-wide
//	tf.LoadGraphModel(store, tf.WithQuantizedCompute(true))
//	serving.ModelOptions{Exec: []tf.ExecOption{tf.WithGEMM(tf.GEMMNaive)}}
//	tfjs-bench -gemm=packed -quant=int8                 // CLI flags
//
// An option set at load time applies to that model's engine's backend; an
// option set with ConfigureExec applies to the process's "node" backend
// (live or created later). Backends without the hooks (cpu, webgl
// reference tiers) ignore the backend-level knobs.

// ExecOption is one execution-configuration knob.
type ExecOption = exec.Option

// ExecConfig is the resolved execution configuration.
type ExecConfig = exec.Config

// GEMMMode selects the native backend's matrix-multiply core.
type GEMMMode = exec.GEMMMode

// GEMM cores: the cache-blocked packed micro-kernel (default; adaptive —
// it row-streams sparse post-relu activations where zero-skip wins) and
// the always-row-streaming naive loop kept for A/B benchmarking.
const (
	GEMMPacked = exec.GEMMPacked
	GEMMNaive  = exec.GEMMNaive
)

// CostModel selects where the parallelism grain's per-element cost comes
// from: the plan's static flop estimates, or the continuous profiler's
// measured ns/element accounts.
type CostModel = exec.CostModel

// Cost models: static flop estimates (default) and measured ns/element
// feedback from the continuous profiler. Results are bit-identical either
// way; only chunking — and therefore wall time — changes.
const (
	CostModelStatic   = exec.CostModelStatic
	CostModelMeasured = exec.CostModelMeasured
)

// WithCostModel selects the chunk-grain cost source (CostModelStatic or
// CostModelMeasured).
func WithCostModel(m CostModel) ExecOption { return exec.WithCostModel(m) }

// WithWorkers sets the intra-op worker budget — how many chunks of one
// kernel's index space may execute concurrently. Results are bit-identical
// across any worker count; only wall time changes. n < 0 resets to the
// default (TFJS_NUM_WORKERS, else the host core count); 0 leaves the
// current setting.
func WithWorkers(n int) ExecOption { return exec.WithWorkers(n) }

// WithGEMM selects the matmul core (GEMMPacked or GEMMNaive).
func WithGEMM(mode GEMMMode) ExecOption { return exec.WithGEMM(mode) }

// WithQuantizedCompute toggles the int8 compute path: when the loaded
// artifact carries per-channel int8 weight scales (converted with
// QuantizationScheme "int8"), the graph optimizer rewrites eligible fused
// nodes onto int8 kernels with int32 accumulation.
func WithQuantizedCompute(on bool) ExecOption { return exec.WithQuantizedCompute(on) }

// WithOptimize toggles the load-time graph optimizer (fusion, folding,
// pruning; on by default).
func WithOptimize(on bool) ExecOption { return exec.WithOptimize(on) }

// WithPlanVerify toggles load-time dataflow verification of the compiled
// fast-path execution plan (dispose points, alias roots; enabled by
// default — see internal/planvet).
func WithPlanVerify(on bool) ExecOption { return exec.WithPlanVerify(on) }

// WithVerify toggles load-time static shape/dtype verification of the
// execution graph (on by default).
func WithVerify(on bool) ExecOption { return exec.WithVerify(on) }

// WithPooling toggles the backend's data-plane buffer recycler (on by
// default for the node backend; TFJS_POOL=off flips the default). With
// pooling on, disposed tensor buffers return to per-engine size-class free
// lists and steady-state inference stops allocating; outputs are
// bit-identical either way.
func WithPooling(on bool) ExecOption { return exec.WithPooling(on) }

// WithPoolPoison toggles poison mode: recycled buffers are scribbled with
// NaN (float32) or sentinel values on free, so use-after-dispose reads
// fail loudly instead of silently seeing stale data. Defaults on in race
// builds and via TFJS_POOL_POISON.
func WithPoolPoison(on bool) ExecOption { return exec.WithPoolPoison(on) }

// LoadGraphModel loads a converted model from an artifact store —
// tf.loadModel(url) (Section 5.1) — applying the execution options to the
// load and to the model's backend.
func LoadGraphModel(store ArtifactStore, opts ...ExecOption) (*GraphModel, error) {
	return graphmodel.Load(store, graphmodel.WithExecOptions(opts...))
}

// ConfigureExec applies execution options process-wide: backend-level
// knobs (workers, GEMM core) take effect on the live "node" backend
// immediately and are remembered for one instantiated later. Returns an
// error for invalid combinations (e.g. an unknown GEMM mode).
func ConfigureExec(opts ...ExecOption) error {
	c := exec.Make(opts...)
	if err := c.Validate(); err != nil {
		return err
	}
	nodeMu.Lock()
	defer nodeMu.Unlock()
	pendingExec = pendingExec.Merge(c)
	if nodeBackend != nil {
		nodeBackend.ApplyExecConfig(c)
	}
	return nil
}

// ExecConfigured returns the process-wide execution configuration
// accumulated by ConfigureExec calls.
func ExecConfigured() ExecConfig {
	nodeMu.Lock()
	defer nodeMu.Unlock()
	return pendingExec
}
