package tf_test

import (
	"math"
	"testing"

	"repro/internal/converter"
	"repro/internal/models"
	"repro/tf"
)

// TestConfigureExecFlowsToNodeBackend: the unified config surface reaches
// the live node backend, accumulates across calls, and resets on demand.
func TestConfigureExecFlowsToNodeBackend(t *testing.T) {
	if err := tf.SetBackend("node"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := tf.ConfigureExec(tf.WithWorkers(-1), tf.WithGEMM(tf.GEMMPacked)); err != nil {
			t.Fatal(err)
		}
	}()

	if err := tf.ConfigureExec(tf.WithWorkers(3)); err != nil {
		t.Fatal(err)
	}
	if got := tf.NumWorkers(); got != 3 {
		t.Fatalf("NumWorkers = %d after ConfigureExec(WithWorkers(3))", got)
	}
	// A later call touching a different knob must not disturb workers.
	if err := tf.ConfigureExec(tf.WithGEMM(tf.GEMMNaive)); err != nil {
		t.Fatal(err)
	}
	if got := tf.NumWorkers(); got != 3 {
		t.Fatalf("NumWorkers = %d, want 3 preserved across unrelated ConfigureExec", got)
	}
	cfg := tf.ExecConfigured()
	if cfg.Workers != 3 || cfg.GEMM != tf.GEMMNaive {
		t.Fatalf("accumulated config %+v, want Workers=3 GEMM=naive", cfg)
	}
	// Invalid configs are rejected at the edge and change nothing.
	if err := tf.ConfigureExec(tf.WithGEMM("blocked")); err == nil {
		t.Fatal("unknown GEMM mode must be rejected")
	}
	if got := tf.ExecConfigured(); got.GEMM != tf.GEMMNaive {
		t.Fatalf("rejected config must not apply, got GEMM %q", got.GEMM)
	}

	// The deprecated shim forwards to the same state.
	tf.Configure(tf.Config{Workers: 5})
	if got := tf.NumWorkers(); got != 5 {
		t.Fatalf("NumWorkers = %d after deprecated Configure, want 5", got)
	}
}

// TestQuantizedModelStillPredictsReasonably is the end-to-end int8 gate:
// a MobileNet classifier converted with the int8 scheme and loaded with
// quantized compute must quantize its conv stack and rank classes the
// same way the f32 model does.
func TestQuantizedModelStillPredictsReasonably(t *testing.T) {
	if err := tf.SetBackend("node"); err != nil {
		t.Fatal(err)
	}
	seq, err := tf.MobileNetV1(models.MobileNetConfig{
		Alpha: 0.25, InputSize: 96, NumClasses: 10, IncludeTop: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tf.ExportSavedModel(seq, false)
	if err != nil {
		t.Fatal(err)
	}

	f32Store := tf.NewMemStore()
	if _, err := tf.Convert(g, f32Store, tf.ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	int8Store := tf.NewMemStore()
	if _, err := tf.Convert(g, int8Store, tf.ConvertOptions{QuantizationScheme: converter.QuantizationInt8}); err != nil {
		t.Fatal(err)
	}

	fm, err := tf.LoadGraphModel(f32Store)
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Dispose()
	qm, err := tf.LoadGraphModel(int8Store, tf.WithQuantizedCompute(true))
	if err != nil {
		t.Fatal(err)
	}
	defer qm.Dispose()
	if n := qm.OptimizeStats().QuantizedOps; n == 0 {
		t.Fatal("no op was rewritten to the int8 kernels")
	}

	// A deterministic synthetic image.
	vals := make([]float32, 96*96*3)
	for i := range vals {
		vals[i] = float32((i*31)%255)/255 - 0.5
	}
	predict := func(m *tf.GraphModel) []float32 {
		x := tf.Tensor4D(vals, 1, 96, 96, 3)
		defer x.Dispose()
		out, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		defer out.Dispose()
		return append([]float32(nil), out.DataSync()...)
	}
	want := predict(fm)
	got := predict(qm)

	argmax := func(v []float32) int {
		best := 0
		for i, x := range v {
			if x > v[best] {
				best = i
			}
		}
		return best
	}
	// Synthetic weights give near-uniform scores, so the top classes can
	// be statistically tied; "still predicts reasonably" means the f32
	// winner stays within noise of the int8 winner, and every class
	// probability survives within the int8 error envelope.
	top := argmax(want)
	if gap := got[argmax(got)] - got[top]; float64(gap) > 0.01 {
		t.Fatalf("f32 top-1 class %d fell %g behind int8 winner %d: %v vs %v",
			top, gap, argmax(got), got, want)
	}
	for i := range want {
		if diff := math.Abs(float64(got[i] - want[i])); diff > 0.05 {
			t.Fatalf("class %d: int8 %g vs f32 %g (diff %g)", i, got[i], want[i], diff)
		}
	}
}
