package tf_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/tf"
)

// randomProgram deterministically generates and executes a random op
// sequence from the given seed, returning every live tensor's values.
// Replaying the same seed on different backends must produce the same
// results — a differential test across the plain, webgl and node kernels.
func randomProgram(t *testing.T, seed int64) [][]float32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	var results [][]float32
	outs := tf.Tidy(func() []*tf.Tensor {
		// Seed pool: a few small tensors with bounded values.
		pool := []*tf.Tensor{}
		for i := 0; i < 3; i++ {
			rank := 1 + rng.Intn(3)
			shape := make([]int, rank)
			for d := range shape {
				shape[d] = 1 + rng.Intn(4)
			}
			vals := make([]float32, sizeOf(shape))
			for j := range vals {
				vals[j] = float32(rng.NormFloat64())
			}
			pool = append(pool, tf.TensorOf(vals, shape...))
		}

		pick := func() *tf.Tensor { return pool[rng.Intn(len(pool))] }

		for step := 0; step < 12; step++ {
			var out *tf.Tensor
			switch rng.Intn(8) {
			case 0: // safe unary
				x := pick()
				switch rng.Intn(5) {
				case 0:
					out = tf.Tanh(x)
				case 1:
					out = tf.Relu(x)
				case 2:
					out = tf.Sigmoid(x)
				case 3:
					out = tf.Abs(x)
				default:
					out = tf.Neg(x)
				}
			case 1: // safe binary with broadcasting against a scalar
				x := pick()
				out = tf.Add(x, tf.Scalar(float32(rng.NormFloat64())))
			case 2: // binary on same-shape operands (clone trick)
				x := pick()
				out = tf.Mul(x, tf.Tanh(x))
			case 3: // safe division
				x := pick()
				out = tf.Div(x, tf.AddScalar(tf.Abs(x), 1))
			case 4: // reduce
				x := pick()
				if x.Rank() == 0 {
					out = tf.AddScalar(x, 1)
					break
				}
				axis := rng.Intn(x.Rank())
				if rng.Intn(2) == 0 {
					out = tf.Sum(x, []int{axis}, rng.Intn(2) == 0)
				} else {
					out = tf.Mean(x, []int{axis}, true)
				}
			case 5: // transpose (reversed dims)
				out = tf.Transpose(pick())
			case 6: // reshape to flat and back to a factor pair
				x := pick()
				out = tf.Reshape(x, x.Size())
			case 7: // concat with itself along axis 0
				x := pick()
				if x.Rank() == 0 {
					out = tf.MulScalar(x, 2)
					break
				}
				out = tf.Concat([]*tf.Tensor{x, x}, 0)
			}
			if out.Size() > 0 && out.Size() < 512 {
				pool = append(pool, out)
			}
		}
		return pool
	})
	for _, o := range outs {
		results = append(results, o.DataSync())
		o.Dispose()
	}
	return results
}

func sizeOf(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// TestDifferentialFuzzAcrossBackends replays random programs on every
// backend and requires element-wise agreement.
func TestDifferentialFuzzAcrossBackends(t *testing.T) {
	defer tf.SetBackend("cpu")
	for seed := int64(0); seed < 25; seed++ {
		if err := tf.SetBackend("cpu"); err != nil {
			t.Fatal(err)
		}
		want := randomProgram(t, seed)
		for _, backend := range []string{"node", "webgl", "webgl-unpacked", "webgl-nosqueeze"} {
			if err := tf.SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			got := randomProgram(t, seed)
			if len(got) != len(want) {
				t.Fatalf("seed %d on %s: %d tensors vs %d", seed, backend, len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("seed %d on %s: tensor %d length %d vs %d", seed, backend, i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					g, w := float64(got[i][j]), float64(want[i][j])
					if math.IsNaN(g) && math.IsNaN(w) {
						continue
					}
					if math.Abs(g-w) > 1e-5*(1+math.Abs(w)) {
						t.Fatalf("seed %d on %s: tensor %d element %d: %g vs %g", seed, backend, i, j, g, w)
					}
				}
			}
		}
	}
}
