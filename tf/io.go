package tf

import (
	"repro/internal/converter"
	"repro/internal/data"
	"repro/internal/graphmodel"
	"repro/internal/models"
	"repro/internal/savedmodel"
)

// This file re-exports the ecosystem-integration surface of Section 5: the
// model converter, the graph-model loader and the models repository.

// GraphDef is the SavedModel stand-in the converter ingests.
type GraphDef = savedmodel.GraphDef

// GraphModel is an executable converted model.
type GraphModel = graphmodel.Model

// ArtifactStore abstracts where converted artifacts live.
type ArtifactStore = converter.Store

// ConvertOptions configures a conversion (quantization, shard size).
type ConvertOptions = converter.Options

// ConvertResult summarizes a conversion.
type ConvertResult = converter.Result

// NewFSStore stores artifacts in a directory.
func NewFSStore(dir string) ArtifactStore { return converter.FSStore{Dir: dir} }

// NewMemStore stores artifacts in memory.
func NewMemStore() *converter.MemStore { return converter.NewMemStore() }

// ExportSavedModel lowers a built Layers model to a GraphDef, optionally
// attaching training-only nodes (which conversion prunes, Section 5.1).
func ExportSavedModel(m *Sequential, addTrainingOps bool) (*GraphDef, error) {
	return savedmodel.FromSequential(m, addTrainingOps)
}

// Convert prunes, shards and optionally quantizes a model into store —
// the tensorflowjs_converter script of Section 5.1.
func Convert(g *GraphDef, store ArtifactStore, opts ConvertOptions) (*ConvertResult, error) {
	return converter.Convert(g, store, opts)
}

// GraphModelOption configures LoadModel.
//
// Deprecated: use LoadGraphModel with ExecOption values (WithOptimize,
// WithVerify, WithWorkers, WithGEMM, WithQuantizedCompute).
type GraphModelOption = graphmodel.Option

// OptimizeStats reports what the load-time graph optimizer did.
type OptimizeStats = graphmodel.OptimizeStats

// WithGraphOptimize enables or disables the load-time graph optimizer
// (operator fusion, batch-norm/constant folding, pruning); on by default.
//
// Deprecated: use WithOptimize with LoadGraphModel.
func WithGraphOptimize(enabled bool) GraphModelOption { return graphmodel.WithOptimize(enabled) }

// WithGraphVerify enables or disables load-time static shape/dtype
// verification of the execution graph (on by default): rank- or
// dtype-inconsistent models are rejected with a node-and-edge diagnostic
// at LoadModel instead of failing at the first Predict.
//
// Deprecated: use WithVerify with LoadGraphModel.
func WithGraphVerify(enabled bool) GraphModelOption { return graphmodel.WithVerify(enabled) }

// LoadModel loads a converted model from an artifact store —
// tf.loadModel(url) (Section 5.1).
//
// Deprecated: use LoadGraphModel, which takes the unified ExecOption
// surface instead of graph-model-specific options.
func LoadModel(store ArtifactStore, opts ...GraphModelOption) (*GraphModel, error) {
	return graphmodel.Load(store, opts...)
}

// ---------------------------------------------------------------------------
// Models repository (Section 5.2)

// Image is the native image object models consume (the HTMLImageElement
// analogue).
type Image = data.Image

// MobileNetConfig selects a MobileNet v1 variant.
type MobileNetConfig = models.MobileNetConfig

// MobileNet is the friendly image classifier from the models repo.
type MobileNet = models.MobileNet

// Classification is one scored label.
type Classification = models.Classification

// PoseNetConfig selects the PoseNet backbone size.
type PoseNetConfig = models.PoseNetConfig

// PoseNet estimates human poses with a tensor-free API (Listing 3).
type PoseNet = models.PoseNet

// Pose, Keypoint and Point are PoseNet's result types.
type (
	Pose     = models.Pose
	Keypoint = models.Keypoint
	Point    = models.Point
)

// NewMobileNet builds a MobileNet classifier with synthetic weights.
func NewMobileNet(cfg MobileNetConfig) (*MobileNet, error) { return models.NewMobileNet(cfg) }

// MobileNetV1 builds the raw Layers-API architecture.
func MobileNetV1(cfg MobileNetConfig) (*Sequential, error) { return models.MobileNetV1(cfg) }

// NewPoseNet builds a PoseNet estimator with synthetic weights.
func NewPoseNet(cfg PoseNetConfig) (*PoseNet, error) { return models.NewPoseNet(cfg) }

// FromPixels converts a native image into a [h, w, c] tensor
// (tf.fromPixels).
func FromPixels(im *Image) *Tensor { return data.FromPixels(im) }

// FromPixelsBatch converts a native image into a [1, h, w, c] tensor.
func FromPixelsBatch(im *Image) *Tensor { return data.FromPixelsBatch(im) }

// SaveLayersModel writes a Layers model to a store as layers-model
// artifacts (model.json + weight shards) — model.save() in the paper's
// API.
func SaveLayersModel(m *Sequential, store ArtifactStore, opts ConvertOptions) (*ConvertResult, error) {
	return converter.SaveLayersModel(m, store, opts)
}

// LoadLayersModel restores a Layers model, with weights, from layers-model
// artifacts — tf.loadModel(url) for Keras-format models (Section 5.1).
func LoadLayersModel(store ArtifactStore) (*Sequential, error) {
	return converter.LoadLayersModel(store)
}

// NewCachingStore wraps a store with a browser-HTTP-cache simulation, the
// mechanism the 4 MB shard files optimize for (Section 5.1).
func NewCachingStore(origin ArtifactStore) *converter.CachingStore {
	return converter.NewCachingStore(origin)
}
