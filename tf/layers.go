package tf

import (
	"repro/internal/layers"
	"repro/internal/train"
)

// This file re-exports the Layers API (Section 3.2) and the training
// utilities under the tf namespace.

// Sequential is a linear stack of layers (tf.sequential in Listing 1).
type Sequential = layers.Sequential

// Layer is the building-block interface.
type Layer = layers.Layer

// Layer configuration types.
type (
	DenseConfig     = layers.DenseConfig
	Conv2DConfig    = layers.Conv2DConfig
	Pool2DConfig    = layers.Pool2DConfig
	BatchNormConfig = layers.BatchNormConfig
	EmbeddingConfig = layers.EmbeddingConfig
	SimpleRNNConfig = layers.SimpleRNNConfig
	CompileConfig   = layers.CompileConfig
	FitConfig       = layers.FitConfig
	History         = layers.History
	NamedWeight     = layers.NamedWeight
)

// NewSequential creates an empty model; an empty name is auto-generated.
func NewSequential(name string) *Sequential { return layers.NewSequential(name) }

// Layer constructors.
func NewDense(cfg DenseConfig) Layer { return layers.NewDense(cfg) }

// NewConv2DLayer creates a 2-D convolution layer.
func NewConv2DLayer(cfg Conv2DConfig) Layer { return layers.NewConv2D(cfg) }

// NewDepthwiseConv2DLayer creates a depthwise convolution layer.
func NewDepthwiseConv2DLayer(cfg Conv2DConfig) Layer { return layers.NewDepthwiseConv2D(cfg) }

// NewMaxPooling2D creates a max-pooling layer.
func NewMaxPooling2D(cfg Pool2DConfig) Layer { return layers.NewMaxPooling2D(cfg) }

// NewAveragePooling2D creates an average-pooling layer.
func NewAveragePooling2D(cfg Pool2DConfig) Layer { return layers.NewAveragePooling2D(cfg) }

// NewGlobalAveragePooling2D creates a global average-pooling layer.
func NewGlobalAveragePooling2D() Layer { return layers.NewGlobalAveragePooling2D() }

// NewFlatten creates a layer that flattens per-example input to rank 1.
func NewFlatten() Layer { return layers.NewFlatten() }

// NewActivationLayer creates a layer applying the named activation.
func NewActivationLayer(activation string) Layer { return layers.NewActivation(activation) }

// NewDropout creates a dropout layer with the given drop rate.
func NewDropout(rate float64) Layer { return layers.NewDropout(rate) }

// NewReshapeLayer creates a layer reshaping per-example dimensions.
func NewReshapeLayer(target []int) Layer { return layers.NewReshape(target) }

// NewBatchNormalization creates a batch-normalization layer.
func NewBatchNormalization(cfg BatchNormConfig) Layer { return layers.NewBatchNormalization(cfg) }

// NewEmbedding creates a trainable token-embedding lookup layer.
func NewEmbedding(cfg EmbeddingConfig) Layer { return layers.NewEmbedding(cfg) }

// NewSimpleRNN creates an Elman recurrent layer (see internal/layers).
func NewSimpleRNN(cfg SimpleRNNConfig) Layer { return layers.NewSimpleRNN(cfg) }

// NewZeroPadding2D creates a spatial zero-padding layer.
func NewZeroPadding2D(pads []int) Layer { return layers.NewZeroPadding2D(pads) }

// ModelFromJSON rebuilds a model from a serialized topology (the Keras
// two-way door of Section 3.2).
func ModelFromJSON(data []byte) (*Sequential, error) { return layers.FromJSON(data) }

// SetLayerSeed makes weight initialization reproducible.
func SetLayerSeed(seed int64) { layers.SetSeed(seed) }

// ---------------------------------------------------------------------------
// Training (tf.train.*)

// Optimizer updates variables from gradients.
type Optimizer = train.Optimizer

// Loss maps (labels, predictions) to a scalar.
type Loss = train.Loss

// Metric is a named evaluation function.
type Metric = train.Metric

// Optimizer constructors (tf.train.sgd, tf.train.adam, ...).
func TrainSGD(lr float64) Optimizer { return train.NewSGD(lr) }

// TrainMomentum returns an SGD-with-momentum optimizer (tf.train.momentum).
func TrainMomentum(lr, momentum float64) Optimizer {
	return train.NewMomentum(lr, momentum, false)
}

// TrainRMSProp returns an RMSProp optimizer (tf.train.rmsprop).
func TrainRMSProp(lr, decay float64) Optimizer { return train.NewRMSProp(lr, decay, 0) }

// TrainAdagrad returns an Adagrad optimizer (tf.train.adagrad).
func TrainAdagrad(lr float64) Optimizer { return train.NewAdagrad(lr) }

// TrainAdam returns an Adam optimizer (tf.train.adam).
func TrainAdam(lr, beta1, beta2, eps float64) Optimizer {
	return train.NewAdam(lr, beta1, beta2, eps)
}

// Minimize computes gradients of f and applies one optimizer step,
// returning the loss (optimizer.minimize).
func Minimize(opt Optimizer, f func() *Tensor, vars []*Variable) *Tensor {
	return train.Minimize(opt, f, vars)
}

// Losses.
func LossMeanSquaredError(yTrue, yPred *Tensor) *Tensor { return train.MeanSquaredError(yTrue, yPred) }

// LossCategoricalCrossentropy is the cross-entropy loss over probabilities.
func LossCategoricalCrossentropy(yTrue, yPred *Tensor) *Tensor {
	return train.CategoricalCrossentropy(yTrue, yPred)
}

// LossSoftmaxCrossEntropy is the numerically stable softmax cross-entropy over logits.
func LossSoftmaxCrossEntropy(yTrue, logits *Tensor) *Tensor {
	return train.SoftmaxCrossEntropyFromLogits(yTrue, logits)
}

// LossBinaryCrossentropy is the binary cross-entropy loss.
func LossBinaryCrossentropy(yTrue, yPred *Tensor) *Tensor {
	return train.BinaryCrossentropy(yTrue, yPred)
}
