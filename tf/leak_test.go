package tf_test

import (
	"strings"
	"testing"

	"repro/tf"
)

// leakOneTensor allocates a tensor and never disposes it; the leak
// report must name this function and file as the allocation site.
func leakOneTensor() *tf.Tensor {
	return tf.Tensor1D([]float32{1, 2, 3})
}

// TestLeakCheckReportsLeakedTensor is the facade acceptance check: a
// function leaking exactly one tensor is reported with exactly that
// tensor and a resolvable allocation site, while tidy-disposed tensors
// stay out of the report.
func TestLeakCheckReportsLeakedTensor(t *testing.T) {
	if err := tf.SetBackend("cpu"); err != nil {
		t.Fatal(err)
	}
	var leaked *tf.Tensor
	rep, err := tf.LeakCheck(func() {
		// Net-zero work: everything inside the tidy is reclaimed.
		tf.Tidy(func() []*tf.Tensor {
			a := tf.Tensor1D([]float32{4, 5})
			b := tf.Add(a, a)
			b.DataSync()
			return nil
		})
		leaked = leakOneTensor()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leaked.Dispose()

	if rep.LiveTensors != 1 {
		t.Fatalf("LiveTensors = %d, want exactly 1:\n%s", rep.LiveTensors, rep)
	}
	if rep.LiveBytes != int64(leaked.Bytes()) {
		t.Errorf("LiveBytes = %d, want %d (the leaked tensor's payload)", rep.LiveBytes, leaked.Bytes())
	}
	if len(rep.Sites) != 1 {
		t.Fatalf("Sites = %+v, want exactly one", rep.Sites)
	}
	site := rep.Sites[0]
	if !strings.Contains(site.Site, "leak_test.go") || !strings.Contains(site.Site, "leakOneTensor") {
		t.Errorf("allocation site %q does not resolve to leakOneTensor in this file", site.Site)
	}
	if rep.Disposes == 0 {
		t.Error("report saw no disposals; the tidy-reclaimed tensors should have been tracked")
	}
}

// TestLeakCheckCleanRun verifies the converse: a function that disposes
// everything it allocates reports zero leaks.
func TestLeakCheckCleanRun(t *testing.T) {
	if err := tf.SetBackend("cpu"); err != nil {
		t.Fatal(err)
	}
	rep, err := tf.LeakCheck(func() {
		tf.Tidy(func() []*tf.Tensor {
			a := tf.Tensor1D([]float32{1, 2})
			tf.Mul(a, a).DataSync()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveTensors != 0 || len(rep.Sites) != 0 {
		t.Fatalf("clean run reported leaks:\n%s", rep)
	}
}

// TestLeakCheckSingleTracker verifies the one-tracker contract: a nested
// LeakCheck fails instead of silently corrupting the outer capture.
func TestLeakCheckSingleTracker(t *testing.T) {
	_, err := tf.LeakCheck(func() {
		if _, nested := tf.LeakCheck(func() {}); nested == nil {
			t.Error("nested LeakCheck succeeded; want an already-installed error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
