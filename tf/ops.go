package tf

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/ops"
)

// This file re-exports the Ops API (the lower-level linear algebra
// operations of Figure 1) under the tf namespace.

// TensorOf creates a tensor from values with an arbitrary shape.
func TensorOf(values []float32, shape ...int) *Tensor { return ops.FromValues(values, shape...) }

// Scalar creates a rank-0 tensor (tf.scalar).
func Scalar(v float32) *Tensor { return ops.Scalar(v) }

// Tensor1D creates a rank-1 tensor (tf.tensor1d).
func Tensor1D(values []float32) *Tensor { return ops.FromValues(values, len(values)) }

// Tensor2D creates a rank-2 tensor (tf.tensor2d, as in Listing 1).
func Tensor2D(values []float32, rows, cols int) *Tensor {
	return ops.FromValues(values, rows, cols)
}

// Tensor3D creates a rank-3 tensor.
func Tensor3D(values []float32, d0, d1, d2 int) *Tensor {
	return ops.FromValues(values, d0, d1, d2)
}

// Tensor4D creates a rank-4 tensor.
func Tensor4D(values []float32, d0, d1, d2, d3 int) *Tensor {
	return ops.FromValues(values, d0, d1, d2, d3)
}

// Zeros, Ones, Fill and friends create constant tensors.
func Zeros(shape ...int) *Tensor { return ops.Zeros(shape...) }

// Ones creates a tensor filled with ones.
func Ones(shape ...int) *Tensor { return ops.Ones(shape...) }

// Fill creates a tensor of the given shape filled with v.
func Fill(shape []int, v float32) *Tensor { return ops.Fill(shape, v) }

// ZerosLike creates a zero tensor with t's shape.
func ZerosLike(t *Tensor) *Tensor { return ops.ZerosLike(t) }

// OnesLike creates a one-filled tensor with t's shape.
func OnesLike(t *Tensor) *Tensor { return ops.OnesLike(t) }

// Eye creates an n×n identity matrix.
func Eye(n int) *Tensor { return ops.Eye(n) }

// RangeN creates a 1-D tensor of values in [start, stop) stepping by step.
func RangeN(start, stop, step float64) *Tensor { return ops.Range(start, stop, step) }

// Linspace creates num evenly spaced values in [start, stop].
func Linspace(start, stop float64, num int) *Tensor { return ops.Linspace(start, stop, num) }

// RandNormal and RandUniform sample random tensors; nil rng is seeded
// deterministically.
func RandNormal(shape []int, mean, stddev float64, rng *rand.Rand) *Tensor {
	return ops.RandNormal(shape, mean, stddev, rng)
}

// RandUniform samples a tensor uniformly from [lo, hi).
func RandUniform(shape []int, lo, hi float64, rng *rand.Rand) *Tensor {
	return ops.RandUniform(shape, lo, hi, rng)
}

// OneHot expands integer labels into one-hot rows.
func OneHot(indices *Tensor, depth int) *Tensor { return ops.OneHot(indices, depth) }

// Cast converts dtypes.
func Cast(t *Tensor, dtype DataType) *Tensor { return ops.Cast(t, dtype) }

// Arithmetic (broadcasting).
func Add(a, b *Tensor) *Tensor { return ops.Add(a, b) }

// Sub returns a - b with broadcasting.
func Sub(a, b *Tensor) *Tensor { return ops.Sub(a, b) }

// Mul returns a * b element-wise with broadcasting.
func Mul(a, b *Tensor) *Tensor { return ops.Mul(a, b) }

// Div returns a / b element-wise with broadcasting.
func Div(a, b *Tensor) *Tensor { return ops.Div(a, b) }

// Maximum returns the element-wise maximum with broadcasting.
func Maximum(a, b *Tensor) *Tensor { return ops.Maximum(a, b) }

// Minimum returns the element-wise minimum with broadcasting.
func Minimum(a, b *Tensor) *Tensor { return ops.Minimum(a, b) }

// Pow returns a ** b element-wise with broadcasting.
func Pow(a, b *Tensor) *Tensor { return ops.Pow(a, b) }

// SquaredDifference returns (a-b)² element-wise.
func SquaredDifference(a, b *Tensor) *Tensor { return ops.SquaredDifference(a, b) }

// AddScalar returns t + v.
func AddScalar(t *Tensor, v float32) *Tensor { return ops.AddScalar(t, v) }

// SubScalar returns t - v.
func SubScalar(t *Tensor, v float32) *Tensor { return ops.SubScalar(t, v) }

// MulScalar returns t * v.
func MulScalar(t *Tensor, v float32) *Tensor { return ops.MulScalar(t, v) }

// DivScalar returns t / v.
func DivScalar(t *Tensor, v float32) *Tensor { return ops.DivScalar(t, v) }

// Comparison and selection.
func Greater(a, b *Tensor) *Tensor { return ops.Greater(a, b) }

// GreaterEqual returns a >= b element-wise as a bool tensor.
func GreaterEqual(a, b *Tensor) *Tensor { return ops.GreaterEqual(a, b) }

// Less returns a < b element-wise as a bool tensor.
func Less(a, b *Tensor) *Tensor { return ops.Less(a, b) }

// LessEqual returns a <= b element-wise as a bool tensor.
func LessEqual(a, b *Tensor) *Tensor { return ops.LessEqual(a, b) }

// Equal returns a == b element-wise as a bool tensor.
func Equal(a, b *Tensor) *Tensor { return ops.Equal(a, b) }

// NotEqual returns a != b element-wise as a bool tensor.
func NotEqual(a, b *Tensor) *Tensor { return ops.NotEqual(a, b) }

// Where selects t where cond is true and f elsewhere, with broadcasting.
func Where(cond, t, f *Tensor) *Tensor { return ops.Where(cond, t, f) }

// LogicalAnd returns a && b element-wise.
func LogicalAnd(a, b *Tensor) *Tensor { return ops.LogicalAnd(a, b) }

// LogicalOr returns a || b element-wise.
func LogicalOr(a, b *Tensor) *Tensor { return ops.LogicalOr(a, b) }

// LogicalNot inverts a bool tensor element-wise.
func LogicalNot(t *Tensor) *Tensor { return ops.LogicalNot(t) }

// Unary math.
func Neg(t *Tensor) *Tensor { return ops.Neg(t) }

// Abs returns |t| element-wise.
func Abs(t *Tensor) *Tensor { return ops.Abs(t) }

// Exp returns e^t element-wise.
func Exp(t *Tensor) *Tensor { return ops.Exp(t) }

// Log returns the natural logarithm element-wise.
func Log(t *Tensor) *Tensor { return ops.Log(t) }

// Log1p returns log(1+t) element-wise.
func Log1p(t *Tensor) *Tensor { return ops.Log1p(t) }

// Sqrt returns the square root element-wise.
func Sqrt(t *Tensor) *Tensor { return ops.Sqrt(t) }

// Rsqrt returns 1/sqrt(t) element-wise.
func Rsqrt(t *Tensor) *Tensor { return ops.Rsqrt(t) }

// Square returns t² element-wise.
func Square(t *Tensor) *Tensor { return ops.Square(t) }

// Reciprocal returns 1/t element-wise.
func Reciprocal(t *Tensor) *Tensor { return ops.Reciprocal(t) }

// Floor rounds down element-wise.
func Floor(t *Tensor) *Tensor { return ops.Floor(t) }

// Ceil rounds up element-wise.
func Ceil(t *Tensor) *Tensor { return ops.Ceil(t) }

// Round rounds to even element-wise.
func Round(t *Tensor) *Tensor { return ops.Round(t) }

// Sign returns -1, 0 or 1 element-wise.
func Sign(t *Tensor) *Tensor { return ops.Sign(t) }

// Sin returns sin(t) element-wise.
func Sin(t *Tensor) *Tensor { return ops.Sin(t) }

// Cos returns cos(t) element-wise.
func Cos(t *Tensor) *Tensor { return ops.Cos(t) }

// Tanh returns tanh(t) element-wise.
func Tanh(t *Tensor) *Tensor { return ops.Tanh(t) }

// Sigmoid returns 1/(1+e^-t) element-wise.
func Sigmoid(t *Tensor) *Tensor { return ops.Sigmoid(t) }

// Softplus returns log(1+e^t) element-wise.
func Softplus(t *Tensor) *Tensor { return ops.Softplus(t) }

// Relu returns max(t, 0) element-wise.
func Relu(t *Tensor) *Tensor { return ops.Relu(t) }

// Relu6 returns min(max(t, 0), 6) element-wise.
func Relu6(t *Tensor) *Tensor { return ops.Relu6(t) }

// Elu returns the exponential linear unit element-wise.
func Elu(t *Tensor) *Tensor { return ops.Elu(t) }

// IsNaN returns a bool tensor marking NaN elements.
func IsNaN(t *Tensor) *Tensor { return ops.IsNaN(t) }

// LeakyRelu, ClipByValue and Step take parameters.
func LeakyRelu(t *Tensor, alpha float64) *Tensor { return ops.LeakyRelu(t, alpha) }

// ClipByValue clamps t into [lo, hi].
func ClipByValue(t *Tensor, lo, hi float64) *Tensor { return ops.ClipByValue(t, lo, hi) }

// MatMul multiplies rank-2 matrices (Listing 2's operation).
func MatMul(a, b *Tensor, transposeA, transposeB bool) *Tensor {
	return ops.MatMul(a, b, transposeA, transposeB)
}

// BatchMatMul multiplies rank-3 tensors batch-wise.
func BatchMatMul(a, b *Tensor, transposeA, transposeB bool) *Tensor {
	return ops.BatchMatMul(a, b, transposeA, transposeB)
}

// Dot is the rank-1 dot product.
func Dot(a, b *Tensor) *Tensor { return ops.Dot(a, b) }

// ConvOpts configures convolution ops.
type ConvOpts = ops.ConvOpts

// PoolOpts configures pooling ops.
type PoolOpts = ops.PoolOpts

// Convolutions and pooling over NHWC tensors.
func Conv2D(x, filter *Tensor, opts ConvOpts) *Tensor { return ops.Conv2D(x, filter, opts) }

// DepthwiseConv2D convolves each channel with its own filters.
func DepthwiseConv2D(x, filter *Tensor, opts ConvOpts) *Tensor {
	return ops.DepthwiseConv2D(x, filter, opts)
}

// SeparableConv2D chains a depthwise and a 1x1 pointwise convolution.
func SeparableConv2D(x, depthwise, pointwise *Tensor, opts ConvOpts) *Tensor {
	return ops.SeparableConv2D(x, depthwise, pointwise, opts)
}

// MaxPool computes 2-D max pooling over NHWC input.
func MaxPool(x *Tensor, opts PoolOpts) *Tensor { return ops.MaxPool(x, opts) }

// AvgPool computes 2-D average pooling over NHWC input.
func AvgPool(x *Tensor, opts PoolOpts) *Tensor { return ops.AvgPool(x, opts) }

// GlobalAvgPool averages over the spatial dimensions of NHWC input.
func GlobalAvgPool(x *Tensor) *Tensor { return ops.GlobalAvgPool(x) }

// BatchNorm normalizes x with given statistics.
func BatchNorm(x, mean, variance, offset, scale *Tensor, epsilon float64) *Tensor {
	return ops.BatchNorm(x, mean, variance, offset, scale, epsilon)
}

// Reductions; empty axes reduce everything.
func Sum(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.Sum(t, axes, keepDims) }

// Mean reduces by arithmetic mean over axes (all axes when empty).
func Mean(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.Mean(t, axes, keepDims) }

// Max reduces by maximum over axes.
func Max(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.Max(t, axes, keepDims) }

// Min reduces by minimum over axes.
func Min(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.Min(t, axes, keepDims) }

// Prod reduces by product over axes.
func Prod(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.Prod(t, axes, keepDims) }

// Any reduces by logical-or over axes.
func Any(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.Any(t, axes, keepDims) }

// All reduces by logical-and over axes.
func All(t *Tensor, axes []int, keepDims bool) *Tensor { return ops.All(t, axes, keepDims) }

// ArgMax returns the index of the maximum along axis as an int32 tensor.
func ArgMax(t *Tensor, axis int) *Tensor { return ops.ArgMax(t, axis) }

// ArgMin returns the index of the minimum along axis as an int32 tensor.
func ArgMin(t *Tensor, axis int) *Tensor { return ops.ArgMin(t, axis) }

// Softmax and friends operate over the last axis.
func Softmax(t *Tensor) *Tensor { return ops.Softmax(t) }

// LogSoftmax computes log(softmax) over the last axis.
func LogSoftmax(t *Tensor) *Tensor { return ops.LogSoftmax(t) }

// LogSumExp computes log(sum(exp(t))) over axes with stabilization.
func LogSumExp(t *Tensor, axes []int, keepDims bool) *Tensor {
	return ops.LogSumExp(t, axes, keepDims)
}

// Moments returns mean and variance over axes.
func Moments(t *Tensor, axes []int, keepDims bool) (mean, variance *Tensor) {
	return ops.Moments(t, axes, keepDims)
}

// Shape manipulation. Reshape and ExpandDims are free (Section 3.4).
func Reshape(t *Tensor, shape ...int) *Tensor { return ops.Reshape(t, shape...) }

// Flatten reshapes t to rank 1.
func Flatten(t *Tensor) *Tensor { return ops.Flatten(t) }

// ExpandDims inserts a size-1 dimension at axis.
func ExpandDims(t *Tensor, axis int) *Tensor { return ops.ExpandDims(t, axis) }

// Squeeze removes size-1 dimensions; with axes given, only those.
func Squeeze(t *Tensor, axes ...int) *Tensor { return ops.Squeeze(t, axes...) }

// Transpose permutes dimensions; an empty perm reverses them.
func Transpose(t *Tensor, perm ...int) *Tensor { return ops.Transpose(t, perm...) }

// Concat concatenates tensors along axis.
func Concat(ts []*Tensor, axis int) *Tensor { return ops.Concat(ts, axis) }

// Stack stacks equally shaped tensors along a new axis.
func Stack(ts []*Tensor, axis int) *Tensor { return ops.Stack(ts, axis) }

// Unstack splits t along axis into tensors with that axis removed.
func Unstack(t *Tensor, axis int) []*Tensor { return ops.Unstack(t, axis) }

// Slice extracts the region at begin with the given size (-1 extends to the end).
func Slice(t *Tensor, begin, size []int) *Tensor { return ops.Slice(t, begin, size) }

// Split divides t into numSplits equal parts along axis.
func Split(t *Tensor, numSplits, axis int) []*Tensor { return ops.Split(t, numSplits, axis) }

// Pad pads t with constantValue; one [before, after] pair per dimension.
func Pad(t *Tensor, paddings [][2]int, constantValue float64) *Tensor {
	return ops.Pad(t, paddings, constantValue)
}

// Gather selects slices of t along axis using integer indices.
func Gather(t, indices *Tensor, axis int) *Tensor { return ops.Gather(t, indices, axis) }

// Tile repeats t reps[d] times along each dimension d.
func Tile(t *Tensor, reps []int) *Tensor { return ops.Tile(t, reps) }

// Reverse flips t along the given axes.
func Reverse(t *Tensor, axes ...int) *Tensor { return ops.Reverse(t, axes...) }

// ---------------------------------------------------------------------------
// Automatic differentiation (Section 3.5)

// GradResult carries the value and gradients of a differentiated function.
type GradResult = core.GradResult

// Grad returns f's value and d f / d x. f must return a scalar.
func Grad(f func() *Tensor, x *Tensor) (value, grad *Tensor) {
	res := core.Global().Gradients(f, []*Tensor{x}, nil)
	return res.Value, res.Grads[0]
}

// Grads returns f's value and its gradients with respect to xs.
func Grads(f func() *Tensor, xs []*Tensor) GradResult {
	return core.Global().Gradients(f, xs, nil)
}

// GradsWithDy backpropagates a provided output gradient.
func GradsWithDy(f func() *Tensor, xs []*Tensor, dy *Tensor) GradResult {
	return core.Global().Gradients(f, xs, dy)
}

// VariableGradsResult maps variables to their gradients.
type VariableGradsResult = core.VariableGradsResult

// VariableGrads differentiates a scalar loss with respect to trainable
// variables, the primitive optimizers are built on.
func VariableGrads(f func() *Tensor, vars []*Variable) VariableGradsResult {
	return core.Global().VariableGrads(f, vars)
}

// CumSum computes a cumulative sum along axis; exclusive excludes each
// element from its own prefix, reverse scans from the end.
func CumSum(t *Tensor, axis int, exclusive, reverse bool) *Tensor {
	return ops.CumSum(t, axis, exclusive, reverse)
}

// Mod computes the element-wise floored modulus.
func Mod(a, b *Tensor) *Tensor { return ops.Mod(a, b) }

// Atan2 computes atan2(a, b) element-wise.
func Atan2(a, b *Tensor) *Tensor { return ops.Atan2(a, b) }

// Expm1 computes e^x - 1 element-wise.
func Expm1(t *Tensor) *Tensor { return ops.Expm1(t) }

// Tan computes tan(x) element-wise.
func Tan(t *Tensor) *Tensor { return ops.Tan(t) }
