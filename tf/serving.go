package tf

import (
	"context"

	"repro/internal/serving"
)

// Serving re-exports: the model-serving subsystem (registry, dynamic
// micro-batcher, KServe-V1-style HTTP API). See internal/serving and
// cmd/tfjs-serve.
type (
	// ServingRegistry holds the named models a server exposes.
	ServingRegistry = serving.Registry
	// ServingServer is the HTTP front-end over a registry.
	ServingServer = serving.Server
	// ServedModel is one registry entry: scheduler, metrics, lifecycle.
	ServedModel = serving.Model
	// ServingConfig tunes the micro-batcher and scheduler.
	ServingConfig = serving.Config
	// ServingModelOptions selects a backend and batching config per model.
	ServingModelOptions = serving.ModelOptions
	// ServingInstance is one JSON-shaped example (values + shape).
	ServingInstance = serving.Instance
	// ServingRolloutStatus describes a versioned model group: default,
	// canary and shadow versions plus evicted entries.
	ServingRolloutStatus = serving.RolloutStatus
	// ServingShedError is returned when admission control or the bounded
	// queue rejects a request; it carries a Retry-After hint.
	ServingShedError = serving.ShedError
	// ServingGraphSpec is a named inference graph (sequence / ensemble /
	// switch composition over served models).
	ServingGraphSpec = serving.GraphSpec
	// ServingGraphNode is one node of an inference graph.
	ServingGraphNode = serving.GraphNode
	// ServingSwitchCase routes a switch node by an input value.
	ServingSwitchCase = serving.SwitchCase
)

// NewServingRegistry returns an empty model registry.
func NewServingRegistry() *ServingRegistry { return serving.NewRegistry() }

// NewServingServer wraps a registry in the KServe-V1-style HTTP API.
func NewServingServer(reg *ServingRegistry) *ServingServer { return serving.NewServer(reg) }

// WithServingTenant tags ctx with a tenant ID for weighted-fair admission
// control (the HTTP layer reads it from the X-Tenant-ID header).
func WithServingTenant(ctx context.Context, tenant string) context.Context {
	return serving.WithTenant(ctx, tenant)
}
