package tf

import (
	"repro/internal/serving"
)

// Serving re-exports: the model-serving subsystem (registry, dynamic
// micro-batcher, KServe-V1-style HTTP API). See internal/serving and
// cmd/tfjs-serve.
type (
	// ServingRegistry holds the named models a server exposes.
	ServingRegistry = serving.Registry
	// ServingServer is the HTTP front-end over a registry.
	ServingServer = serving.Server
	// ServedModel is one registry entry: scheduler, metrics, lifecycle.
	ServedModel = serving.Model
	// ServingConfig tunes the micro-batcher and scheduler.
	ServingConfig = serving.Config
	// ServingModelOptions selects a backend and batching config per model.
	ServingModelOptions = serving.ModelOptions
	// ServingInstance is one JSON-shaped example (values + shape).
	ServingInstance = serving.Instance
)

// NewServingRegistry returns an empty model registry.
func NewServingRegistry() *ServingRegistry { return serving.NewRegistry() }

// NewServingServer wraps a registry in the KServe-V1-style HTTP API.
func NewServingServer(reg *ServingRegistry) *ServingServer { return serving.NewServer(reg) }
