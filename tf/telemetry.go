package tf

import (
	"sync"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/telemetry"
)

// TelemetryEvent is one record emitted by the engine and the backends:
// kernel dispatches, tensor uploads/downloads, tidy-scope memory samples,
// model spans and simulated-device fence/page events.
type TelemetryEvent = telemetry.Event

// TelemetryObserver receives telemetry events. Observers run inline on the
// emitting goroutine and must not block.
type TelemetryObserver = telemetry.Observer

// TelemetryObserverFunc adapts a function to TelemetryObserver.
type TelemetryObserverFunc = telemetry.ObserverFunc

// TraceRecorder is the bounded ring-buffer trace recorder; register it
// with WithTelemetry and render via WriteChromeTrace.
type TraceRecorder = telemetry.Recorder

// KernelStats aggregates per-kernel counts, total/p50/p95 times and bytes
// moved; register it with WithTelemetry.
type KernelStats = telemetry.Stats

// NewTraceRecorder returns a trace recorder keeping the last capacity
// events (<= 0 selects the default capacity).
func NewTraceRecorder(capacity int) *TraceRecorder { return telemetry.NewRecorder(capacity) }

// NewKernelStats returns an empty kernel-stats aggregator.
func NewKernelStats() *KernelStats { return telemetry.NewStats() }

// WithTelemetry registers observers on the global engine's telemetry hub
// and returns a function removing them. This is the one instrumentation
// surface: tracing, kernel statistics, memory timelines and custom hooks
// all attach here. With no observer registered the engine's hot path pays
// a single atomic load per kernel.
//
//	rec := tf.NewTraceRecorder(0)
//	defer tf.WithTelemetry(rec)()
//	// ... run model ...
//	rec.WriteChromeTrace(f, time.Time{})
func WithTelemetry(obs ...TelemetryObserver) (remove func()) {
	hub := core.Global().Telemetry()
	removes := make([]func(), 0, len(obs))
	for _, o := range obs {
		removes = append(removes, hub.Register(o))
	}
	return func() {
		for _, r := range removes {
			r()
		}
	}
}

// Config carries process-wide tuning knobs applied by Configure.
type Config struct {
	// Workers sets the goroutine fan-out of the "node" backend's parallel
	// kernels. 0 leaves the current value; negative resets to the default
	// (TFJS_NUM_WORKERS env, else the host core count).
	Workers int
}

var (
	nodeMu         sync.Mutex
	nodeBackend    *native.Backend
	pendingWorkers int
)

// newNodeBackend builds the "node" backend, applying any worker count
// configured before the backend was first activated.
func newNodeBackend() *native.Backend {
	nodeMu.Lock()
	defer nodeMu.Unlock()
	b := native.New()
	if pendingWorkers != 0 {
		b.SetWorkers(pendingWorkers)
	}
	nodeBackend = b
	return b
}

// Configure applies the config to the process: the worker count takes
// effect on the live "node" backend immediately and is remembered for a
// backend instantiated later. The TFJS_NUM_WORKERS environment variable
// provides the same knob without code changes.
func Configure(c Config) {
	nodeMu.Lock()
	defer nodeMu.Unlock()
	if c.Workers != 0 {
		pendingWorkers = c.Workers
		if nodeBackend != nil {
			nodeBackend.SetWorkers(c.Workers)
		}
	}
}

// NumWorkers reports the "node" backend's current worker-pool size (the
// configured value when the backend has not been instantiated yet).
func NumWorkers() int {
	nodeMu.Lock()
	defer nodeMu.Unlock()
	if nodeBackend != nil {
		return nodeBackend.Workers()
	}
	if pendingWorkers > 0 {
		return pendingWorkers
	}
	return native.DefaultWorkers()
}
