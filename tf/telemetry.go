package tf

import (
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/native"
	"repro/internal/telemetry"
)

// TelemetryEvent is one record emitted by the engine and the backends:
// kernel dispatches, tensor uploads/downloads, tidy-scope memory samples,
// model spans and simulated-device fence/page events.
type TelemetryEvent = telemetry.Event

// TelemetryObserver receives telemetry events. Observers run inline on the
// emitting goroutine and must not block.
type TelemetryObserver = telemetry.Observer

// TelemetryObserverFunc adapts a function to TelemetryObserver.
type TelemetryObserverFunc = telemetry.ObserverFunc

// TraceRecorder is the bounded ring-buffer trace recorder; register it
// with WithTelemetry and render via WriteChromeTrace.
type TraceRecorder = telemetry.Recorder

// KernelStats aggregates per-kernel counts, total/p50/p95 times and bytes
// moved; register it with WithTelemetry.
type KernelStats = telemetry.Stats

// NewTraceRecorder returns a trace recorder keeping the last capacity
// events (<= 0 selects the default capacity).
func NewTraceRecorder(capacity int) *TraceRecorder { return telemetry.NewRecorder(capacity) }

// NewKernelStats returns an empty kernel-stats aggregator.
func NewKernelStats() *KernelStats { return telemetry.NewStats() }

// WithTelemetry registers observers on the global engine's telemetry hub
// and returns a function removing them. This is the one instrumentation
// surface: tracing, kernel statistics, memory timelines and custom hooks
// all attach here. With no observer registered the engine's hot path pays
// a single atomic load per kernel.
//
//	rec := tf.NewTraceRecorder(0)
//	defer tf.WithTelemetry(rec)()
//	// ... run model ...
//	rec.WriteChromeTrace(f, time.Time{})
func WithTelemetry(obs ...TelemetryObserver) (remove func()) {
	hub := core.Global().Telemetry()
	removes := make([]func(), 0, len(obs))
	for _, o := range obs {
		removes = append(removes, hub.Register(o))
	}
	return func() {
		for _, r := range removes {
			r()
		}
	}
}

// LeakReport attributes live (undisposed) tensors to their allocation
// sites, tidy scopes and model spans, and separates tensors the garbage
// collector had to finalize from those disposed deterministically.
type LeakReport = telemetry.LeakReport

// LifetimeTracker records tensor allocate/dispose/finalize lifecycles
// with sampled allocation-site stacks; install it on the engine with
// EngineOf().TrackLifetimes for long-window captures, or use LeakCheck
// for the common run-and-report case.
type LifetimeTracker = telemetry.LifetimeTracker

// NewLifetimeTracker returns a tracker capturing an allocation-site
// stack every sampleEvery-th allocation (1 = every allocation).
func NewLifetimeTracker(sampleEvery int) *LifetimeTracker {
	return telemetry.NewLifetimeTracker(sampleEvery)
}

// LeakCheck runs fn under a tensor-lifetime tracker and reports every
// tensor fn allocated and failed to dispose, each attributed to the
// source line that allocated it and the tidy scope it escaped from:
//
//	rep, _ := tf.LeakCheck(func() {
//	    a := tf.Tensor1D(1, 2, 3)   // leaked: no Dispose, no tidy
//	    _ = a
//	})
//	fmt.Print(rep)                  // 1 live tensor @ main.go:42
//
// Tensors fn returns on purpose count as leaks too — run the check
// around code that should be net-zero (a tidy body, one serving
// request). Allocation sites are captured for every allocation
// (sampling 1), so a nonempty report always names lines. The engine
// holds at most one tracker; LeakCheck errors if another capture (e.g.
// a serving /debug/memory?leaks=N window) is in flight.
//
// The static tensorleak analyzer (go run ./cmd/tfjs-vet) catches the
// same bug class at vet time and names allocation sites in the same
// "func (file:line)" format, so a runtime report and a static finding
// for one leak point at the same line.
func LeakCheck(fn func()) (*LeakReport, error) {
	lt := telemetry.NewLifetimeTracker(1)
	remove, err := core.Global().TrackLifetimes(lt)
	if err != nil {
		return nil, err
	}
	defer remove()
	fn()
	rep := lt.Report()
	if dm, ok := core.Global().Backend().(interface {
		DeviceMemory() *telemetry.DeviceMemory
	}); ok {
		rep.Device = dm.DeviceMemory()
	}
	return rep, nil
}

// Config carries process-wide tuning knobs applied by Configure.
//
// Deprecated: use ConfigureExec with WithWorkers — the one execution
// configuration shared by LoadGraphModel, serving and the CLIs.
type Config struct {
	// Workers sets the goroutine fan-out of the "node" backend's parallel
	// kernels. 0 leaves the current value; negative resets to the default
	// (TFJS_NUM_WORKERS env, else the host core count).
	Workers int
}

var (
	nodeMu      sync.Mutex
	nodeBackend *native.Backend
	pendingExec exec.Config
)

// newNodeBackend builds the "node" backend, applying any execution config
// accumulated before the backend was first activated.
func newNodeBackend() *native.Backend {
	nodeMu.Lock()
	defer nodeMu.Unlock()
	b := native.New()
	b.ApplyExecConfig(pendingExec)
	nodeBackend = b
	return b
}

// Configure applies the config to the process: the worker count takes
// effect on the live "node" backend immediately and is remembered for a
// backend instantiated later. The TFJS_NUM_WORKERS environment variable
// provides the same knob without code changes.
//
// Deprecated: use ConfigureExec(WithWorkers(n)).
func Configure(c Config) {
	if c.Workers != 0 {
		//lint:ignore operr the legacy signature returns nothing, and a workers-only config always validates
		_ = ConfigureExec(WithWorkers(c.Workers))
	}
}

// NumWorkers reports the "node" backend's current worker-pool size (the
// configured value when the backend has not been instantiated yet).
func NumWorkers() int {
	nodeMu.Lock()
	defer nodeMu.Unlock()
	if nodeBackend != nil {
		return nodeBackend.Workers()
	}
	if pendingExec.Workers > 0 {
		return pendingExec.Workers
	}
	return native.DefaultWorkers()
}
