// Package tf is the public API of the library: a Go rendering of the
// TensorFlow.js API surface described in the paper. It exposes eager
// tensors, the Ops API, automatic differentiation, memory management with
// tidy scopes, profiling and debugging utilities, multiple backends (the
// plain CPU baseline, the simulated-WebGL backend, and the "node" native
// backend), the Layers API, the model converter and the models repository.
//
// The simplest program mirrors Listing 1 of the paper:
//
//	model := tf.NewSequential("")
//	model.Add(tf.NewDense(tf.DenseConfig{Units: 1, InputShape: []int{1}}))
//	model.Compile(tf.CompileConfig{Optimizer: "sgd", Loss: "meanSquaredError"})
//	xs := tf.Tensor2D([]float32{1, 2, 3, 4}, 4, 1)
//	ys := tf.Tensor2D([]float32{1, 3, 5, 7}, 4, 1)
//	model.Fit(xs, ys, tf.FitConfig{Epochs: 100})
//	model.Predict(tf.Tensor2D([]float32{5}, 1, 1)).Format()
package tf

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/jsenv"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/webgl"
	"repro/internal/webgpu"
)

// Tensor is the core data structure: an immutable, shape-annotated handle
// onto a backend data container (Section 3.1).
type Tensor = tensor.Tensor

// DataType enumerates element types.
type DataType = tensor.DataType

// Float32, Int32 and Bool are the supported dtypes.
const (
	Float32 = tensor.Float32
	Int32   = tensor.Int32
	Bool    = tensor.Bool
)

// Variable is a mutable tensor used for model weights.
type Variable = core.Variable

// Engine is the eager execution engine.
type Engine = core.Engine

// MemoryInfo is the allocation snapshot returned by Memory().
type MemoryInfo = core.MemoryInfo

// ProfileInfo is the result of Profile().
type ProfileInfo = core.ProfileInfo

// TimeInfo is the result of Time().
type TimeInfo = kernels.TimeInfo

// OpError is the typed panic value of operation errors.
type OpError = core.OpError

func init() {
	e := core.Global()
	// Backend priority mirrors the paper's automatic selection: WebGL
	// when available, with CPU as the universal fallback; "node" is the
	// server-side native binding (Figure 1).
	e.RegisterBackend("webgl", func() (kernels.Backend, error) { return webgl.New(webgl.DefaultConfig()), nil })
	e.RegisterBackend("node", func() (kernels.Backend, error) { return newNodeBackend(), nil })
	e.RegisterBackend("cpu", func() (kernels.Backend, error) { return cpu.NewNaive(), nil })

	// Ablation variants used by benchmarks and tests.
	unpacked := webgl.DefaultConfig()
	unpacked.Packed = false
	e.RegisterBackend("webgl-unpacked", func() (kernels.Backend, error) { return webgl.New(unpacked), nil })
	nosqueeze := webgl.DefaultConfig()
	nosqueeze.SqueezeLogicalShapes = false
	e.RegisterBackend("webgl-nosqueeze", func() (kernels.Backend, error) { return webgl.New(nosqueeze), nil })
	norecycle := webgl.DefaultConfig()
	norecycle.Recycling = false
	e.RegisterBackend("webgl-norecycle", func() (kernels.Backend, error) { return webgl.New(norecycle), nil })
	v1 := webgl.DefaultConfig()
	v1.Device.WebGLVersion = 1
	e.RegisterBackend("webgl1", func() (kernels.Backend, error) { return webgl.New(v1), nil })
	// The experimental WebGPU backend (§4.3 future work): compute-shader
	// pipelines with workgroups and shared memory on the WebGL data plane.
	e.RegisterBackend("webgpu", func() (kernels.Backend, error) { return webgpu.New(webgl.DefaultConfig()), nil })
}

// EngineOf returns the global engine.
func EngineOf() *Engine { return core.Global() }

// SetBackend activates a registered backend by name ("webgl", "node",
// "cpu", or one of the ablation variants).
func SetBackend(name string) error { return core.Global().SetBackend(name) }

// GetBackendName returns the active backend's name.
func GetBackendName() string { return core.Global().BackendName() }

// Backends lists the registered backend names in priority order.
func Backends() []string { return core.Global().RegisteredBackends() }

// Memory reports live tensor, buffer and byte counts (tf.memory()).
func Memory() MemoryInfo { return core.Global().Memory() }

// Tidy runs fn and disposes every tensor it creates except those it
// returns (tf.tidy, Section 3.7).
func Tidy(fn func() []*Tensor) []*Tensor { return core.Global().Tidy("tidy", fn) }

// Tidy1 is Tidy for functions returning a single tensor.
func Tidy1(fn func() *Tensor) *Tensor {
	outs := core.Global().Tidy("tidy", func() []*Tensor {
		out := fn()
		if out == nil {
			return nil
		}
		return []*Tensor{out}
	})
	if len(outs) == 0 {
		return nil
	}
	return outs[0]
}

// Keep marks a tensor to survive the enclosing tidy scope (tf.keep).
func Keep(t *Tensor) *Tensor { return t.Keep() }

// DisposeVariables is a convenience to dispose a set of variables.
func DisposeVariables(vars ...*Variable) {
	for _, v := range vars {
		v.Dispose()
	}
}

// Time measures fn on the active backend (tf.time, Section 3.8). On the
// webgl backend KernelMS is device program time, excluding upload and
// download.
func Time(fn func()) TimeInfo { return core.Global().Time(fn) }

// Profile reports the memory effect and kernel log of fn (tf.profile).
func Profile(fn func()) ProfileInfo { return core.Global().Profile(fn) }

// EnableDebugMode turns on per-kernel profiling and NaN checking; the
// first kernel producing a NaN panics with its name (Section 3.8).
func EnableDebugMode() { core.Global().SetDebugMode(true) }

// DisableDebugMode turns debug mode off.
func DisableDebugMode() { core.Global().SetDebugMode(false) }

// SetAutoFinalize enables garbage-collector-driven tensor cleanup, the
// Node.js memory model of Section 4.2 ("eliminates the need for manual
// memory management"). Off by default; tidy scopes remain the portable
// mechanism.
func SetAutoFinalize(on bool) { core.Global().SetAutoFinalize(on) }

// NewVariable creates a mutable variable from an initial tensor.
func NewVariable(initial *Tensor, trainable bool, name string) *Variable {
	return core.Global().NewVariable(initial, name, trainable)
}

// Future is the promise-like result of Tensor.Data().
type Future = jsenv.Future[[]float32]

// EventLoop is a single-threaded task loop simulating the browser main
// thread; used by the Figure 2/3 experiments.
type EventLoop = jsenv.Loop

// NewEventLoop starts a main-thread loop.
func NewEventLoop() *EventLoop { return jsenv.NewLoop() }
