package tf_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/tf"
)

// TestListing1ThroughFacade runs the paper's Listing 1 program through the
// public API only.
func TestListing1ThroughFacade(t *testing.T) {
	if err := tf.SetBackend("node"); err != nil {
		t.Fatal(err)
	}
	tf.SetLayerSeed(42)
	model := tf.NewSequential("")
	model.Add(tf.NewDense(tf.DenseConfig{Units: 1, InputShape: []int{1}}))
	if err := model.Compile(tf.CompileConfig{
		Loss: "meanSquaredError", Optimizer: "sgd", LearningRate: 0.08,
	}); err != nil {
		t.Fatal(err)
	}
	xs := tf.Tensor2D([]float32{1, 2, 3, 4}, 4, 1)
	ys := tf.Tensor2D([]float32{1, 3, 5, 7}, 4, 1)
	defer xs.Dispose()
	defer ys.Dispose()
	if _, err := model.Fit(xs, ys, tf.FitConfig{Epochs: 200, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	x := tf.Tensor2D([]float32{5}, 1, 1)
	defer x.Dispose()
	pred := model.Predict(x)
	defer pred.Dispose()
	if got := pred.DataSync()[0]; math.Abs(float64(got)-9) > 0.3 {
		t.Fatalf("predict(5) = %g, want ~9", got)
	}
}

func TestBackendSwitchingAcrossComputation(t *testing.T) {
	for _, backend := range []string{"cpu", "node", "webgl"} {
		if err := tf.SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		if tf.GetBackendName() != backendName(backend) {
			t.Fatalf("active backend %q after SetBackend(%q)", tf.GetBackendName(), backend)
		}
		out := tf.Tidy1(func() *tf.Tensor {
			a := tf.Tensor2D([]float32{1, 2, 3, 4}, 2, 2)
			return tf.MatMul(a, a, false, false)
		})
		got := out.DataSync()
		if got[0] != 7 || got[3] != 22 {
			t.Fatalf("matmul on %s = %v", backend, got)
		}
		out.Dispose()
	}
	tf.SetBackend("cpu")
}

// backendName maps a registered name to the backend's self-reported name.
func backendName(registered string) string {
	switch {
	case strings.HasPrefix(registered, "webgl"):
		return "webgl"
	case registered == "node":
		return "node"
	default:
		return "cpu"
	}
}

func TestAsyncDataOnEventLoop(t *testing.T) {
	if err := tf.SetBackend("webgl"); err != nil {
		t.Fatal(err)
	}
	defer tf.SetBackend("cpu")
	loop := tf.NewEventLoop()
	defer loop.Stop()
	got := make(chan []float32, 1)
	loop.Post(func() {
		x := tf.Fill([]int{64, 64}, 3)
		y := tf.Mul(x, x)
		y.Data().ThenOn(loop, func(vals []float32, err error) {
			if err != nil {
				t.Error(err)
			}
			x.Dispose()
			y.Dispose()
			got <- vals
		})
	})
	select {
	case vals := <-got:
		if vals[0] != 9 {
			t.Fatalf("async value %g", vals[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async data never resolved")
	}
}

func TestTimeAndProfileFacade(t *testing.T) {
	if err := tf.SetBackend("webgl"); err != nil {
		t.Fatal(err)
	}
	defer tf.SetBackend("cpu")
	ti := tf.Time(func() {
		tf.Tidy(func() []*tf.Tensor {
			a := tf.Fill([]int{128, 128}, 0.5)
			tf.MatMul(a, a, false, false).DataSync()
			return nil
		})
	})
	if !ti.HasKernelMS {
		t.Fatal("webgl Time must report device kernel time")
	}
	if ti.KernelMS <= 0 || ti.WallMS <= 0 {
		t.Fatalf("time info %+v", ti)
	}
	// The paper: GPU time excludes upload/download, so kernel time is
	// below wall time.
	if ti.KernelMS >= ti.WallMS {
		t.Fatalf("kernel %.3fms should be < wall %.3fms", ti.KernelMS, ti.WallMS)
	}

	info := tf.Profile(func() {
		tf.Tidy(func() []*tf.Tensor {
			a := tf.Fill([]int{16, 16}, 1)
			tf.Relu(tf.Add(a, a)).DataSync()
			return nil
		})
	})
	if len(info.Kernels) < 3 {
		t.Fatalf("profile kernels = %d", len(info.Kernels))
	}
}

func TestGradFacade(t *testing.T) {
	if err := tf.SetBackend("cpu"); err != nil {
		t.Fatal(err)
	}
	x := tf.Scalar(4)
	defer x.Dispose()
	value, grad := tf.Grad(func() *tf.Tensor {
		return tf.Reshape(tf.Sqrt(x))
	}, x)
	defer value.Dispose()
	defer grad.Dispose()
	if got := value.DataSync()[0]; got != 2 {
		t.Fatalf("sqrt(4) = %g", got)
	}
	// d sqrt(x)/dx = 1/(2 sqrt(x)) = 0.25.
	if got := grad.DataSync()[0]; math.Abs(float64(got)-0.25) > 1e-6 {
		t.Fatalf("grad = %g, want 0.25", got)
	}
}

func TestMobileNetThroughConverterPipeline(t *testing.T) {
	// End-to-end ecosystem test: build MobileNet, export, convert with
	// quantization, reload, compare classifications (Sections 5.1-5.2).
	if err := tf.SetBackend("node"); err != nil {
		t.Fatal(err)
	}
	defer tf.SetBackend("cpu")
	model, err := tf.MobileNetV1(tf.MobileNetConfig{
		Alpha: 0.25, InputSize: 64, NumClasses: 20, IncludeTop: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Dispose()
	graph, err := tf.ExportSavedModel(model, true)
	if err != nil {
		t.Fatal(err)
	}
	store := tf.NewMemStore()
	res, err := tf.Convert(graph, store, tf.ConvertOptions{QuantizationBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrunedNodes) == 0 {
		t.Fatal("expected pruned training nodes")
	}
	gm, err := tf.LoadGraphModel(store)
	if err != nil {
		t.Fatal(err)
	}
	img := data.SyntheticPhoto(64, 3)
	x := tf.FromPixelsBatch(img)
	defer x.Dispose()
	want := model.Predict(x)
	defer want.Dispose()
	got, err := gm.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Dispose()
	wc := tf.ArgMax(want, 1)
	gc := tf.ArgMax(got, 1)
	defer wc.Dispose()
	defer gc.Dispose()
	if wc.DataSync()[0] != gc.DataSync()[0] {
		t.Fatal("quantized round-trip changed the MobileNet prediction")
	}
}

func TestMemoryFacade(t *testing.T) {
	if err := tf.SetBackend("cpu"); err != nil {
		t.Fatal(err)
	}
	before := tf.Memory()
	a := tf.Ones(10, 10)
	mid := tf.Memory()
	if mid.NumTensors != before.NumTensors+1 {
		t.Fatalf("NumTensors %d -> %d", before.NumTensors, mid.NumTensors)
	}
	if mid.NumBytes != before.NumBytes+400 {
		t.Fatalf("NumBytes %d -> %d, want +400", before.NumBytes, mid.NumBytes)
	}
	a.Dispose()
	after := tf.Memory()
	if after.NumTensors != before.NumTensors || after.NumBytes != before.NumBytes {
		t.Fatal("dispose did not restore memory counters")
	}
}

func TestDebugModeFacade(t *testing.T) {
	if err := tf.SetBackend("cpu"); err != nil {
		t.Fatal(err)
	}
	tf.EnableDebugMode()
	defer tf.DisableDebugMode()
	defer func() {
		if recover() == nil {
			t.Fatal("debug mode should panic on NaN")
		}
	}()
	tf.Tidy(func() []*tf.Tensor {
		tf.Log(tf.Scalar(-1)) // NaN
		return nil
	})
}
